//! Delta-table SA fast lane (ROADMAP: "heuristic-priced staged-SA
//! cells with an exact-engine equality oracle").
//!
//! The staged-SA inner loop of [`crate::annealer::anneal_packet`] pays,
//! per proposed move, two nested-`Vec` cost-table lookups, two eq. 6
//! normalizations, a transcendental `exp()` inside the heat-bath rule,
//! and two generic `gen_range` draws. None of that work needs to be
//! that expensive: the per-packet cost tables of eqs. 2–5 are constants
//! that flatten into contiguous rows, the eq. 6 total is a pure
//! function of two running sums, the Boltzmann curve can be bracketed
//! once into a quantized lookup table, and the RNG rejection zones are
//! pure functions of the (fixed) packet shape.
//!
//! This module packages those observations as a **lane** the schedulers
//! select with [`SaLane`]:
//!
//! * [`SaLane::Exact`] — the original engine, unchanged. It is the
//!   oracle the other lanes are judged against.
//! * [`SaLane::DeltaTable`] — the fast lane in its *lossless* table
//!   configuration: every accept/reject decision, every RNG draw, and
//!   every floating-point cost value is **bit-identical** to the exact
//!   lane. Where the quantized acceptance table cannot prove a decision
//!   (the proposal's `u` lands inside the table's conservative error
//!   band, or the bucket brushes `p == 1.0` where the draw count itself
//!   is at stake) it falls back to the exact `exp()` path, so
//!   losslessness is a theorem, not a tolerance.
//! * [`SaLane::Quantized`] — an opt-in lossy configuration that decides
//!   every in-range proposal from the table's bucket midpoint and never
//!   evaluates `exp()` for it. It is validated *statistically* (the
//!   acceptance rate tracks the true Boltzmann probability to within
//!   the bucket width), not bit-for-bit. It still consumes the exact
//!   lane's RNG draw counts.
//! * [`SaLane::Turbo`] — the certified-lossy lane: it drops the RNG
//!   stream contract entirely. Proposals draw from a counter-based
//!   stream ([`crate::rng_stream`], batched with no sequential
//!   dependency), bounded draws use a multiply-high reduction instead
//!   of zone rejection, acceptance is the pure midpoint threshold
//!   ([`AcceptTable::turbo_threshold`]) with **no** exact-fallback
//!   slack bands, and the per-packet cost tables are optionally `f32`.
//!   Each ingredient toggles independently via [`TurboTuning`]. The
//!   lane is certified by a corpus-scale statistical equivalence study
//!   (`lane_study` bin → `results/LANE_EQUIV.json`, gated in
//!   `tests/sa_lane_turbo.rs`), not by any bitwise oracle.
//!
//! # The oracle contract
//!
//! For every packet, every seed, and every [`AnnealParams`]
//! configuration, the `DeltaTable` lane must produce the same accepted
//! move sequence, the same trace samples (bit-equal `f64`s), the same
//! final mapping, and leave the RNG in the same state as the exact
//! lane. `crates/core/tests/sa_lane.rs` pins this property with
//! proptests; `tests/sa_lane_corpus.rs` pins it on the frozen corpus.
//! The `Quantized` lane only promises the statistical equivalence
//! above plus the same *number* of RNG draws per decision.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use anneal_graph::Work;
use anneal_sim::EpochContext;
use anneal_topology::ProcId;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use crate::annealer::{AnnealParams, InitRule, PacketOutcome};
use crate::boltzmann::{accept, acceptance_probability, AcceptanceRule, TEMP_EPSILON};
use crate::cost::{BalanceRange, CostModel};
use crate::packet::AnnealingPacket;
use crate::trace::{PacketTrace, TraceSample};
use anneal_graph::TaskId;

/// Which implementation of the staged-SA inner loop a scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SaLane {
    /// The original per-move `exp()` + nested-table engine (the
    /// oracle).
    Exact,
    /// Flat delta tables + lossless quantized acceptance: bit-identical
    /// to [`SaLane::Exact`], faster. The default.
    #[default]
    DeltaTable,
    /// Flat delta tables + bucket-midpoint acceptance: no `exp()` on
    /// the hot path, validated statistically only. Opt-in.
    Quantized,
    /// Certified-lossy fast lane: counter-based RNG streams
    /// ([`crate::rng_stream`]), no-fallback midpoint acceptance and
    /// `f32` cost tables. No bitwise or draw-count contract — gated by
    /// the corpus-scale statistical equivalence study instead.
    Turbo,
}

impl SaLane {
    /// Every lane, in CLI/display order (what `--sa-lane` accepts).
    pub const ALL: [SaLane; 4] = [
        SaLane::Exact,
        SaLane::DeltaTable,
        SaLane::Quantized,
        SaLane::Turbo,
    ];

    /// Stable lowercase name (CSV provenance, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            SaLane::Exact => "exact",
            SaLane::DeltaTable => "delta-table",
            SaLane::Quantized => "quantized",
            SaLane::Turbo => "turbo",
        }
    }

    /// The valid `--sa-lane` values as a human-readable list (CLI help
    /// and bad-argument errors).
    pub fn name_list() -> String {
        SaLane::ALL
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Whether this lane is bit-identical to [`SaLane::Exact`].
    pub fn is_lossless(self) -> bool {
        !matches!(self, SaLane::Quantized | SaLane::Turbo)
    }
}

impl fmt::Display for SaLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SaLane {
    type Err = String;

    /// Case-insensitive: `Turbo`, `TURBO` and `turbo` all parse.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        SaLane::ALL
            .iter()
            .find(|l| l.name() == lower)
            .copied()
            .ok_or_else(|| {
                format!(
                    "unknown SA lane '{s}' (expected one of: {})",
                    SaLane::name_list()
                )
            })
    }
}

/// How the fast lane resolved its acceptance decisions; flushed through
/// `anneal-obs` so `--metrics` shows the table's hit profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneCounters {
    /// Decided with neither a table lookup nor an `exp()`: frozen
    /// temperature, a sure accept (`p == 1`), or a sure reject
    /// (`p == 0`).
    pub shortcut: u64,
    /// Decided by the quantized table bounds alone (no `exp()`).
    pub table: u64,
    /// Needed the exact Boltzmann evaluation (`u` inside the table's
    /// conservative error band, or a bucket where the draw count is
    /// uncertain).
    pub fallback: u64,
}

impl LaneCounters {
    /// Total decisions taken.
    pub fn decisions(&self) -> u64 {
        self.shortcut + self.table + self.fallback
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &LaneCounters) {
        self.shortcut += other.shortcut;
        self.table += other.table;
        self.fallback += other.fallback;
    }
}

/// Bit-exact replica of the vendored RNG's private `unit_f64` — the
/// same `[0, 1)` sample `gen_bool` consumes, so a table decision and an
/// exact `gen_bool` decision read identical bits from the stream.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A precomputed draw plan for `gen_range(0..bound)`: the vendored
/// RNG's zone-rejection constants are pure functions of `bound`, so
/// computing them once per packet removes two 64-bit divisions per
/// proposal while consuming the exact same `next_u64` stream.
#[derive(Debug, Clone, Copy)]
enum Draw {
    /// `bound` is a power of two: a single masked draw.
    Mask(u64),
    /// General case: zone rejection, identical to `u64_below`.
    Zone {
        /// The exclusive upper bound.
        bound: u64,
        /// Largest `v` that keeps `v % bound` unbiased.
        zone: u64,
    },
}

impl Default for Draw {
    fn default() -> Self {
        Draw::Mask(0)
    }
}

impl Draw {
    fn new(bound: u64) -> Self {
        debug_assert!(bound >= 1);
        if bound.is_power_of_two() {
            Draw::Mask(bound - 1)
        } else {
            Draw::Zone {
                bound,
                zone: u64::MAX - (u64::MAX - bound + 1) % bound,
            }
        }
    }

    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        match self {
            Draw::Mask(m) => (rng.next_u64() & m) as usize,
            Draw::Zone { bound, zone } => loop {
                let v = rng.next_u64();
                if v <= zone {
                    return (v % bound) as usize;
                }
            },
        }
    }
}

/// One quantization bucket over `x = delta / temp`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// `u < lo` proves accept (`lo ≤ p` everywhere in the bucket).
    lo: f64,
    /// `u ≥ hi` proves reject (`hi ≥ p` everywhere in the bucket).
    hi: f64,
    /// **Midpoint-threshold invariant** (the documented decision rule
    /// of the `Quantized` and `Turbo` lanes, surfaced by
    /// [`AcceptTable::turbo_threshold`]): `mid` is the *exact*
    /// acceptance probability evaluated at the bucket's center
    /// `x_center = x_lo + (i + ½)·w` — not an average, not an
    /// interpolation — and a lossy decision is `u < mid` for one
    /// uniform draw `u ∈ [0, 1)`. Because both rules are monotone
    /// decreasing in `x`, `mid` always lies inside the conservative
    /// bracket: `lo ≤ mid ≤ hi` (up to the bracket slack), so the
    /// midpoint decision can only differ from the exact decision when
    /// `u` falls inside the bucket's probability span (≤ the bucket
    /// width in probability, ~2.5e-4). Pinned by the
    /// `midpoint_threshold_semantics_are_pinned` test.
    mid: f64,
    /// `mid` premultiplied into 53-bit draw space:
    /// `⌊mid · 2⁵³⌋`, so the turbo loop decides `(draw >> 11) <
    /// mid_bits` with no int→float conversion per move (see
    /// [`AcceptTable::turbo_threshold_bits`]).
    mid_bits: u64,
    /// The bucket brushes `p == 1.0`, where even the *number* of RNG
    /// draws depends on the exact probability — delegate wholesale.
    exact: bool,
}

/// Quantized Boltzmann acceptance for one [`AcceptanceRule`], built
/// once per process ([`accept_table`]).
///
/// The acceptance probability of both rules is a monotone decreasing
/// function of `x = delta / temp` alone, so one table per rule covers
/// every `(delta, temp)` pair. The active region is split into `N`
/// buckets storing conservative probability brackets `[lo, hi]`
/// (bucket-edge probabilities widened by a slack that dominates the
/// few-ulp `exp` evaluation error); outside it the decision is a
/// region shortcut (`p` provably 0 or 1, or so small only `u == 0.0`
/// accepts). A uniform draw `u` outside `[lo, hi)` is decided by the
/// table; inside it, the lossless configuration re-evaluates the exact
/// probability with the *already drawn* `u`, preserving both the
/// decision and the stream position bit-for-bit.
#[derive(Debug)]
pub struct AcceptTable {
    rule: AcceptanceRule,
    x_lo: f64,
    inv_w: f64,
    /// Accept without drawing for `x ≤ accept_below` (`p == 1.0`
    /// provably, matching the exact lane's `p >= 1.0` short-circuit).
    accept_below: f64,
    /// Above this `x` the exact probability may hit 0.0 (no draw) —
    /// `HeatBath` proves reject (its own overflow guard), `Metropolis`
    /// delegates to the exact path.
    reject_above: f64,
    /// `x ∈ [tail_from, reject_above]`: `p` is positive but below the
    /// smallest nonzero `u` (`2⁻⁵³`), so the draw accepts iff
    /// `u == 0.0`.
    tail_from: f64,
    buckets: Vec<Bucket>,
}

/// Buckets per table; 4096 × ~18.5 milli-units of `x` keeps the
/// fallback band (≈ `2·slack / bucket-probability-span`) negligible.
const TABLE_BUCKETS: usize = 4096;
/// Bracket widening; dominates `exp`'s few-ulp (≈1e-16) evaluation
/// error by four orders of magnitude while keeping the fallback band
/// microscopically thin.
const TABLE_SLACK: f64 = 1e-12;

/// The turbo draw space: acceptance draws are the top 53 bits of a
/// `u64`, uniform on `[0, 2⁵³)`; a threshold of `TURBO_DRAW_SPAN`
/// accepts every draw.
pub const TURBO_DRAW_SPAN: u64 = 1 << 53;

impl AcceptTable {
    fn build(rule: AcceptanceRule) -> AcceptTable {
        // HeatBath: p(x) = 1/(1+eˣ). For x ≤ −37, eˣ ≤ 8.6e-17 < 2⁻⁵³
        // so the computed p is exactly 1.0 (accept, no draw); at
        // x = 38, p ≈ 3.1e-17 < 2⁻⁵³ (tail); above 700 the engine's
        // own guard pins p = 0.0 (reject, no draw).
        // Metropolis: p(x) = e⁻ˣ for x > 0 (x ≤ 0 short-circuits
        // before the table); at x = 40, p ≈ 4.2e-18 < 2⁻⁵³ (tail); up
        // to x = 700 the result is a normal float, provably positive;
        // beyond that subnormal/zero rounding decides the *draw count*,
        // so the table delegates.
        let (x_lo, x_hi, accept_below) = match rule {
            AcceptanceRule::HeatBath => (-37.0, 38.0, -37.0),
            AcceptanceRule::Metropolis => (0.0, 40.0, f64::NEG_INFINITY),
        };
        let w = (x_hi - x_lo) / TABLE_BUCKETS as f64;
        // Buckets whose probability could round to exactly 1.0 are
        // marked for wholesale delegation: there the exact lane may
        // skip the draw entirely, so no post-draw repair is possible.
        let near_one = 1.0 - 4.0 * f64::EPSILON;
        let mut buckets = Vec::with_capacity(TABLE_BUCKETS);
        for i in 0..TABLE_BUCKETS {
            let xl = x_lo + w * i as f64;
            let xr = x_lo + w * (i + 1) as f64;
            // Both rules are monotone decreasing in x, so the left edge
            // is the bucket's supremum and the right edge its infimum.
            let pl = acceptance_probability(rule, xl, 1.0);
            let pr = acceptance_probability(rule, xr, 1.0);
            let mid = acceptance_probability(rule, xl + 0.5 * w, 1.0);
            buckets.push(Bucket {
                lo: pr - TABLE_SLACK,
                hi: pl + TABLE_SLACK,
                mid,
                mid_bits: (mid * TURBO_DRAW_SPAN as f64) as u64,
                exact: pl >= near_one,
            });
        }
        AcceptTable {
            rule,
            x_lo,
            inv_w: 1.0 / w,
            accept_below,
            reject_above: 700.0,
            tail_from: x_hi,
            buckets,
        }
    }

    /// The rule this table quantizes.
    pub fn rule(&self) -> AcceptanceRule {
        self.rule
    }

    /// Lossless accept/reject: bit-identical decision *and* RNG
    /// consumption to [`accept`] for every input.
    #[inline]
    pub fn accept_lossless<R: Rng + ?Sized>(
        &self,
        delta: f64,
        temp: f64,
        rng: &mut R,
        counters: &mut LaneCounters,
    ) -> bool {
        self.decide(delta, temp, rng, false, counters)
    }

    /// Lossy accept/reject from the bucket midpoint: same RNG
    /// consumption, statistically equivalent decision, never evaluates
    /// `exp()` for an in-range bucket.
    #[inline]
    pub fn accept_quantized<R: Rng + ?Sized>(
        &self,
        delta: f64,
        temp: f64,
        rng: &mut R,
        counters: &mut LaneCounters,
    ) -> bool {
        self.decide(delta, temp, rng, true, counters)
    }

    /// The turbo lane's draw-free decision rule: for `x = ΔF/T`,
    /// returns the probability threshold `th` such that the acceptance
    /// decision is `u < th` for a single uniform draw `u ∈ [0, 1)`.
    ///
    /// This is the **no-fallback midpoint rule** — the documented
    /// invariant the turbo lane is built on (see the `Bucket::mid`
    /// field contract):
    ///
    /// * `x ≤ x_lo` (provable accept region; for Metropolis this is
    ///   `x ≤ 0`) → `1.0` (always accept);
    /// * `x ≥ tail_from` → `0.0` (always reject — this swallows both
    ///   the `p < 2⁻⁵³` tail and the `x > 700` overflow region, *for
    ///   both rules*: where the lossless lane delegates Metropolis
    ///   beyond 700 to the exact path because the draw count is at
    ///   stake, turbo simply rejects a `p ≤ e⁻⁷⁰⁰` move);
    /// * otherwise → the bucket's exact center probability `mid`,
    ///   **including** the `exact`-marked buckets the
    ///   lossless/quantized lanes delegate (there `mid` rounds to
    ///   ~1.0, so the decision is a near-certain accept).
    ///
    /// A NaN `x` saturates to bucket 0 (threshold ≈ 1, near-certain
    /// accept) instead of panicking — a documented divergence from the
    /// exact lane, whose `gen_bool` panics on NaN. Monotone
    /// non-increasing in `x` up to the bracket slack.
    #[inline]
    pub fn turbo_threshold(&self, x: f64) -> f64 {
        if x <= self.x_lo {
            return 1.0;
        }
        if x >= self.tail_from {
            return 0.0;
        }
        let i = (((x - self.x_lo) * self.inv_w) as usize).min(self.buckets.len() - 1);
        self.buckets[i].mid
    }

    /// [`AcceptTable::turbo_threshold`] in integer draw space: the
    /// decision for one draw `v` is `(v >> 11) < bits`, so the hot
    /// loop compares two integers instead of converting the draw to a
    /// `f64` every move. Returns [`TURBO_DRAW_SPAN`] for the certain
    /// accept region and `0` for certain reject; in between,
    /// `⌊mid · 2⁵³⌋` (precomputed per bucket). The flooring merges the
    /// `p < 2⁻⁵³` bucket tail into certain reject — a ≤ 2⁻⁵³ per-move
    /// probability shift against the `f64` rule, far inside the lossy
    /// lane's statistical contract (pinned against the `f64` form by
    /// `turbo_threshold_bits_mirror_the_float_rule`).
    #[inline]
    pub fn turbo_threshold_bits(&self, x: f64) -> u64 {
        if x <= self.x_lo {
            return TURBO_DRAW_SPAN;
        }
        if x >= self.tail_from {
            return 0;
        }
        let i = (((x - self.x_lo) * self.inv_w) as usize).min(self.buckets.len() - 1);
        self.buckets[i].mid_bits
    }

    /// Turbo accept/reject: the [`AcceptTable::turbo_threshold`]
    /// midpoint rule with at most one uniform draw and **zero** exact
    /// fallbacks — `counters.fallback` is never incremented (pinned by
    /// tests). Certain decisions (threshold 0 or 1, frozen
    /// temperature) consume no draw, so the RNG stream position is
    /// *not* the exact lane's: this entry is only for lossy-lane
    /// callers (static SA's turbo arm, [`SaScratch::anneal_turbo`]).
    #[inline]
    pub fn accept_turbo<R: RngCore + ?Sized>(
        &self,
        delta: f64,
        temp: f64,
        rng: &mut R,
        counters: &mut LaneCounters,
    ) -> bool {
        if temp <= TEMP_EPSILON {
            counters.shortcut += 1;
            return delta < 0.0;
        }
        let th = self.turbo_threshold(delta / temp);
        if th >= 1.0 {
            counters.shortcut += 1;
            true
        } else if th <= 0.0 {
            counters.shortcut += 1;
            false
        } else {
            counters.table += 1;
            unit_f64(rng) < th
        }
    }

    #[inline]
    fn decide<R: Rng + ?Sized>(
        &self,
        delta: f64,
        temp: f64,
        rng: &mut R,
        quantized: bool,
        counters: &mut LaneCounters,
    ) -> bool {
        // Frozen system: strict downhill, no draw (the exact lane's
        // p ∈ {0, 1} short-circuits).
        if temp <= TEMP_EPSILON {
            counters.shortcut += 1;
            return delta < 0.0;
        }
        if self.rule == AcceptanceRule::Metropolis && delta <= 0.0 {
            counters.shortcut += 1;
            return true;
        }
        let x = delta / temp;
        if x <= self.accept_below {
            counters.shortcut += 1;
            return true;
        }
        if x > self.reject_above {
            if self.rule == AcceptanceRule::HeatBath {
                // The engine's own overflow guard: p is exactly 0.0.
                counters.shortcut += 1;
                return false;
            }
            // Metropolis beyond 700: p may round to a subnormal (draw)
            // or to 0.0 (no draw) — only the exact path knows which.
            counters.fallback += 1;
            return accept(self.rule, delta, temp, rng);
        }
        if x >= self.tail_from {
            // 0 < p < 2⁻⁵³: the smallest nonzero u already rejects.
            counters.table += 1;
            return unit_f64(rng) == 0.0;
        }
        // NaN x saturates to bucket 0, which is always an `exact`
        // bucket for both rules — NaN handling (including the panic in
        // `gen_bool`) stays byte-for-byte the exact lane's.
        let i = (((x - self.x_lo) * self.inv_w) as usize).min(self.buckets.len() - 1);
        let b = &self.buckets[i];
        if b.exact {
            counters.fallback += 1;
            return accept(self.rule, delta, temp, rng);
        }
        let u = unit_f64(rng);
        if quantized {
            counters.table += 1;
            return u < b.mid;
        }
        if u < b.lo {
            counters.table += 1;
            return true;
        }
        if u >= b.hi {
            counters.table += 1;
            return false;
        }
        // u inside the conservative band: settle it exactly with the
        // draw already consumed (p ∈ (0, 1) is proven here, so the
        // exact lane would have drawn the same u).
        counters.fallback += 1;
        u < acceptance_probability(self.rule, delta, temp)
    }
}

static HEAT_BATH_TABLE: OnceLock<AcceptTable> = OnceLock::new();
static METROPOLIS_TABLE: OnceLock<AcceptTable> = OnceLock::new();

/// The process-wide acceptance table for a rule (built on first use,
/// ~8k `exp()` calls, shared by every scheduler and restart).
pub fn accept_table(rule: AcceptanceRule) -> &'static AcceptTable {
    match rule {
        AcceptanceRule::HeatBath => {
            HEAT_BATH_TABLE.get_or_init(|| AcceptTable::build(AcceptanceRule::HeatBath))
        }
        AcceptanceRule::Metropolis => {
            METROPOLIS_TABLE.get_or_init(|| AcceptTable::build(AcceptanceRule::Metropolis))
        }
    }
}

/// Sentinel for "unassigned" in the flat mapping arrays.
const NONE: u32 = u32::MAX;

/// Attribution toggles for the turbo lane's three lossy ingredients.
/// All default to `true` (the shipped turbo configuration); flipping
/// one off isolates its contribution to speed and to the equivalence
/// study (`lane_study --tuning` rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TurboTuning {
    /// Draw proposals and acceptance from the counter-based stream
    /// ([`crate::rng_stream::CounterRng`], incremental Weyl state) instead of
    /// the scheduler's sequential generator. This toggle is honored by
    /// the *caller* ([`crate::sa::SaScheduler`] picks which generator
    /// to pass); [`SaScratch::anneal_turbo`] itself is generic over the
    /// stream.
    pub counter_rng: bool,
    /// Decide acceptance from the no-fallback midpoint threshold
    /// ([`AcceptTable::turbo_threshold`]); `false` falls back to the
    /// lossless banded decision (still on the turbo draw plan).
    pub midpoint_accept: bool,
    /// Price moves from `f32` copies of the level/communication tables
    /// (half the cache footprint; deltas still accumulate in `f64`).
    ///
    /// **Off by default**: the corpus study shows quality is
    /// unaffected, but at the paper's packet sizes (≤ ~100 candidates
    /// × ≤ 16 processors) both tables already fit in L1, so the
    /// per-move `f32 → f64` converts outweigh the bandwidth saving —
    /// a measured ~5% *loss* on baseline x86-64 (`lane_study
    /// --tuning` records the attribution). The toggle stays for wider
    /// topologies, where the footprint argument starts to hold.
    pub f32_tables: bool,
}

impl Default for TurboTuning {
    fn default() -> Self {
        TurboTuning {
            counter_rng: true,
            midpoint_accept: true,
            f32_tables: false,
        }
    }
}

/// What one fast-lane packet run produced (the flat-lane analogue of
/// [`PacketOutcome`]; the final mapping stays in the scratch).
#[derive(Debug, Clone)]
pub struct LaneOutcome {
    /// Temperature steps executed.
    pub iterations: u64,
    /// Total moves proposed.
    pub moves: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Final normalized cost.
    pub final_cost: f64,
    /// Optional per-move trajectory (allocated only when requested).
    pub trace: Option<PacketTrace>,
}

/// Reusable fast-lane state: the flat per-packet cost tables, the
/// mapping arrays, and the RNG draw plans. Built once per instance and
/// reused across packets and restarts (via
/// [`crate::parallel::ScratchPool`]), so the steady-state inner loop
/// performs zero heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SaScratch {
    // Flat packet tables (eqs. 2–5 constants).
    tasks: Vec<TaskId>,
    procs: Vec<ProcId>,
    /// `levels[i] as f64`, the eq. 3 pricing operand.
    lv: Vec<f64>,
    /// Row-major `comm_cost[t * p + j] as f64`, the eq. 4/5 operand.
    cc: Vec<f64>,
    /// `f32` copy of `lv` (turbo lane, [`TurboTuning::f32_tables`]);
    /// filled lazily by [`SaScratch::anneal_turbo`].
    lv32: Vec<f32>,
    /// `f32` copy of `cc` (turbo lane).
    cc32: Vec<f32>,
    worst: Vec<u64>,
    sort_buf: Vec<u64>,
    preds: Vec<(ProcId, Work)>,
    // Eq. 6 normalization constants (CostModel-identical).
    wb: f64,
    wc: f64,
    range_b: f64,
    range_c: f64,
    n: usize,
    p: usize,
    epoch_time: u64,
    // RNG draw plans for the packet shape.
    draw_task: Draw,
    draw_proc: Draw,
    // Mapping state (u32 sentinel encoding of PacketMapping).
    proc_of: Vec<u32>,
    task_at: Vec<u32>,
    best_proc_of: Vec<u32>,
    perm_tasks: Vec<usize>,
    perm_procs: Vec<usize>,
}

impl SaScratch {
    /// An empty scratch; buffers grow to the high-water mark on use.
    pub fn new() -> Self {
        SaScratch::default()
    }

    /// Loads an already-assembled [`AnnealingPacket`] plus the eq. 6
    /// weights, reproducing [`CostModel::new`]'s normalization ranges
    /// bit-for-bit.
    pub fn load_packet(&mut self, packet: &AnnealingPacket, wb: f64, wc: f64, bal: BalanceRange) {
        assert!(wb >= 0.0 && wc >= 0.0, "negative weights");
        self.n = packet.num_tasks();
        self.p = packet.num_procs();
        self.wb = wb;
        self.wc = wc;
        self.epoch_time = packet.epoch_time;
        self.tasks.clear();
        self.tasks.extend_from_slice(&packet.tasks);
        self.procs.clear();
        self.procs.extend_from_slice(&packet.procs);
        self.lv.clear();
        self.lv.extend(packet.levels.iter().map(|&l| l as f64));
        self.cc.clear();
        self.cc.reserve(self.n * self.p);
        for row in &packet.comm_cost {
            self.cc.extend(row.iter().map(|&c| c as f64));
        }
        self.worst.clear();
        self.worst.extend_from_slice(&packet.worst_comm);
        self.sort_buf.clear();
        self.sort_buf.extend_from_slice(&packet.levels);
        self.compute_ranges(bal);
        self.prepare_run();
    }

    /// Builds the flat packet tables straight from an epoch context —
    /// the allocation-free analogue of [`AnnealingPacket::from_epoch`]
    /// followed by [`CostModel::new`], computing identical values.
    // lint:allow(panic) reason="ready tasks have placed predecessors"
    pub fn load_epoch(
        &mut self,
        ctx: &EpochContext<'_>,
        levels: &[Work],
        wb: f64,
        wc: f64,
        bal: BalanceRange,
    ) {
        assert!(wb >= 0.0 && wc >= 0.0, "negative weights");
        let n = ctx.ready.len();
        let p = ctx.idle.len();
        self.n = n;
        self.p = p;
        self.wb = wb;
        self.wc = wc;
        self.epoch_time = ctx.time;
        self.tasks.clear();
        self.tasks.extend_from_slice(ctx.ready);
        self.procs.clear();
        self.procs.extend_from_slice(ctx.idle);
        self.lv.clear();
        self.sort_buf.clear();
        for &t in ctx.ready {
            let l = levels[t.index()];
            self.sort_buf.push(l);
            self.lv.push(l as f64);
        }
        self.cc.clear();
        self.cc.resize(n * p, 0.0);
        self.worst.clear();
        self.worst.resize(n, 0);
        if ctx.comm_enabled {
            for (i, &t) in ctx.ready.iter().enumerate() {
                // Predecessor placements are all known: ready ⇒ finished.
                self.preds.clear();
                self.preds.extend(ctx.graph.predecessors(t).iter().map(|e| {
                    let src = ctx.placement[e.target.index()]
                        .expect("predecessor of a ready task is placed");
                    (src, e.weight)
                }));
                let mut wmax = 0u64;
                for (j, &q) in ctx.idle.iter().enumerate() {
                    let mut c = 0u64;
                    for &(src, w) in &self.preds {
                        let d = ctx.routes.distance(src, q);
                        c += ctx.params.eq4_cost(w, d, src == q);
                    }
                    self.cc[i * p + j] = c as f64;
                    wmax = wmax.max(c);
                }
                self.worst[i] = wmax;
            }
        }
        self.compute_ranges(bal);
        self.prepare_run();
    }

    /// Reproduces [`CostModel::new`]'s `ΔF_b`/`ΔF_c` computation on the
    /// scratch buffers (`sort_buf` must hold the packet levels).
    fn compute_ranges(&mut self, bal: BalanceRange) {
        let k = self.n.min(self.p);
        self.sort_buf.sort_unstable();
        let min_sum: u64 = self.sort_buf.iter().take(k).sum();
        let max_sum: u64 = self.sort_buf.iter().rev().take(k).sum();
        let mut range_b = (max_sum - min_sum) as f64;
        if bal == BalanceRange::PerIdle && self.p > 0 {
            range_b /= self.p as f64;
        }
        if range_b <= 0.0 {
            range_b = 1.0;
        }
        self.range_b = range_b;
        self.sort_buf.clear();
        self.sort_buf.extend_from_slice(&self.worst);
        self.sort_buf.sort_unstable();
        let mut range_c = self.sort_buf.iter().rev().take(k).sum::<u64>() as f64;
        if range_c <= 0.0 {
            range_c = 1.0;
        }
        self.range_c = range_c;
    }

    fn prepare_run(&mut self) {
        debug_assert!(self.n < NONE as usize && self.p < NONE as usize);
        self.draw_task = Draw::new(self.n as u64);
        self.draw_proc = Draw::new(self.p as u64);
        self.proc_of.clear();
        self.proc_of.resize(self.n, NONE);
        self.task_at.clear();
        self.task_at.resize(self.p, NONE);
        self.best_proc_of.clear();
        self.best_proc_of.resize(self.n, NONE);
    }

    /// The loaded packet's task ids (packet-index order).
    pub fn task_ids(&self) -> &[TaskId] {
        &self.tasks
    }

    /// The loaded packet's processor ids (packet-index order).
    pub fn proc_ids(&self) -> &[ProcId] {
        &self.procs
    }

    /// Final `(task index, proc index)` assignments in task order —
    /// identical to `PacketMapping::assignments` on the converged
    /// mapping.
    pub fn assignments(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.proc_of
            .iter()
            .enumerate()
            .filter_map(|(t, &p)| (p != NONE).then_some((t, p as usize)))
    }

    /// Eq. 6 total — the verbatim [`CostModel::total`] expression.
    #[inline]
    fn total(&self, fb_raw: f64, fc_raw: f64) -> f64 {
        self.wb * fb_raw / self.range_b + self.wc * fc_raw / self.range_c
    }

    #[inline]
    fn balance_term(&self, fb_raw: f64) -> f64 {
        self.wb * fb_raw / self.range_b
    }

    #[inline]
    fn comm_term(&self, fc_raw: f64) -> f64 {
        self.wc * fc_raw / self.range_c
    }

    /// Raw `(F_b, F_c)` by full recomputation — same task-order
    /// summation as [`CostModel::raw_full`].
    fn raw_full(&self) -> (f64, f64) {
        let mut fb = 0.0;
        let mut fc = 0.0;
        for (t, &pr) in self.proc_of.iter().enumerate() {
            if pr != NONE {
                fb -= self.lv[t];
                fc += self.cc[t * self.p + pr as usize];
            }
        }
        (fb, fc)
    }

    /// `PacketMapping::saturate_random` on the flat arrays: identical
    /// shuffles (tasks first, then processors), identical placements.
    fn saturate_random<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.perm_tasks.clear();
        self.perm_tasks.extend(0..self.n);
        self.perm_procs.clear();
        self.perm_procs.extend(0..self.p);
        self.perm_tasks.shuffle(rng);
        self.perm_procs.shuffle(rng);
        self.proc_of.iter_mut().for_each(|x| *x = NONE);
        self.task_at.iter_mut().for_each(|x| *x = NONE);
        for (&t, &p) in self.perm_tasks.iter().zip(self.perm_procs.iter()) {
            self.proc_of[t] = p as u32;
            self.task_at[p] = t as u32;
        }
    }

    fn saturate_in_order(&mut self) {
        self.proc_of.iter_mut().for_each(|x| *x = NONE);
        self.task_at.iter_mut().for_each(|x| *x = NONE);
        for i in 0..self.n.min(self.p) {
            self.proc_of[i] = i as u32;
            self.task_at[i] = i as u32;
        }
    }

    /// Runs the fast-lane annealing loop on the loaded packet. With
    /// `quantized == false` this replays [`anneal_packet`] bit-for-bit:
    /// same draws, same float expressions, same accepted-move sequence,
    /// same trace. The converged mapping is left in the scratch
    /// ([`SaScratch::assignments`]).
    ///
    /// [`anneal_packet`]: crate::annealer::anneal_packet
    pub fn anneal_loaded<R: Rng + ?Sized>(
        &mut self,
        params: &AnnealParams,
        rng: &mut R,
        quantized: bool,
        want_trace: bool,
        counters: &mut LaneCounters,
    ) -> LaneOutcome {
        let n = self.n;
        let p = self.p;
        assert!(n > 0 && p > 0, "empty packet");
        let table = accept_table(params.acceptance);

        match params.init {
            InitRule::Random => self.saturate_random(rng),
            InitRule::InOrder => self.saturate_in_order(),
        }
        let (mut fb, mut fc) = self.raw_full();
        let mut cost = self.total(fb, fc);
        let mut best_cost = cost;
        self.best_proc_of.copy_from_slice(&self.proc_of);

        let mut trace = want_trace.then(|| PacketTrace {
            packet: 0,
            epoch_time: self.epoch_time,
            candidates: n,
            idle: p,
            samples: Vec::with_capacity(params.max_iters as usize),
        });

        let moves_per_temp = if params.moves_per_temp == 0 {
            (2 * n).max(8)
        } else {
            params.moves_per_temp
        };

        let mut accepted_count = 0u64;
        let mut stable = 0u64;
        let mut k = 0u64;
        let mut moves = 0u64;
        while k < params.max_iters && stable < params.stable_iters {
            let temp = params.cooling.temperature(k);
            let mut cost_changed = false;
            for _ in 0..moves_per_temp {
                let task = self.draw_task.sample(rng);
                let cur = self.proc_of[task];
                let mut was_accepted = false;
                if !(p == 1 && cur == 0) {
                    // Rejection-sample a processor ≠ current, on the
                    // same draw stream as the exact lane.
                    let mut proc = self.draw_proc.sample(rng);
                    while proc as u32 == cur {
                        proc = self.draw_proc.sample(rng);
                    }
                    // Price the move from the flat tables with the
                    // exact lane's verbatim float expressions
                    // (CostModel::delta on Transfer/Swap).
                    let occ = self.task_at[proc];
                    let (dfb, dfc) = if occ == NONE {
                        // Transfer { task, to: proc, from: cur }
                        let (old_fb, old_fc) = if cur != NONE {
                            (-self.lv[task], self.cc[task * p + cur as usize])
                        } else {
                            (0.0, 0.0)
                        };
                        (-self.lv[task] - old_fb, self.cc[task * p + proc] - old_fc)
                    } else {
                        // Swap { task, other: occ, to: proc, from: cur }
                        let other = occ as usize;
                        if cur != NONE {
                            let f = cur as usize;
                            let fb_before = -self.lv[task] - self.lv[other];
                            let fb_after = -self.lv[task] + -self.lv[other];
                            let fc_before = self.cc[task * p + f] + self.cc[other * p + proc];
                            let fc_after = self.cc[task * p + proc] + self.cc[other * p + f];
                            (fb_after - fb_before, fc_after - fc_before)
                        } else {
                            let fb_before = 0.0 - self.lv[other];
                            let fb_after = -self.lv[task] + 0.0;
                            let fc_before = 0.0 + self.cc[other * p + proc];
                            let fc_after = self.cc[task * p + proc] + 0.0;
                            (fb_after - fb_before, fc_after - fc_before)
                        }
                    };
                    // One eq. 6 evaluation per move: the exact lane's
                    // post-move `cost = total(fb, fc)` recomputation is
                    // bit-identical to `cand` on accept and a no-op on
                    // reject, so caching it here loses nothing.
                    let cand = self.total(fb + dfb, fc + dfc);
                    let delta = cand - cost;
                    let acc = if quantized {
                        table.accept_quantized(delta, temp, rng, counters)
                    } else {
                        table.accept_lossless(delta, temp, rng, counters)
                    };
                    if acc {
                        if occ == NONE {
                            if cur != NONE {
                                self.task_at[cur as usize] = NONE;
                            }
                        } else if cur != NONE {
                            self.proc_of[occ as usize] = cur;
                            self.task_at[cur as usize] = occ;
                        } else {
                            self.proc_of[occ as usize] = NONE;
                        }
                        self.proc_of[task] = proc as u32;
                        self.task_at[proc] = task as u32;
                        fb += dfb;
                        fc += dfc;
                        was_accepted = true;
                        accepted_count += 1;
                        if delta.abs() > 1e-12 {
                            cost_changed = true;
                        }
                        cost = cand;
                        if params.keep_best && cost < best_cost {
                            best_cost = cost;
                            self.best_proc_of.copy_from_slice(&self.proc_of);
                        }
                    }
                }
                if let Some(tr) = trace.as_mut() {
                    tr.samples.push(TraceSample {
                        iter: moves,
                        temp,
                        f_b_raw: fb,
                        f_c_raw: fc,
                        f_b_norm: self.balance_term(fb),
                        f_c_norm: self.comm_term(fc),
                        f_total: cost,
                        accepted: was_accepted,
                    });
                }
                moves += 1;
            }
            if cost_changed {
                stable = 0;
            } else {
                stable += 1;
            }
            k += 1;
        }

        let final_cost = if params.keep_best && best_cost < cost {
            self.proc_of.copy_from_slice(&self.best_proc_of);
            best_cost
        } else {
            cost
        };
        LaneOutcome {
            iterations: k,
            moves,
            accepted: accepted_count,
            final_cost,
            trace,
        }
    }

    /// Fills the `f32` table copies from the loaded `f64` tables.
    fn fill_f32(&mut self) {
        self.lv32.clear();
        self.lv32.extend(self.lv.iter().map(|&v| v as f32));
        self.cc32.clear();
        self.cc32.extend(self.cc.iter().map(|&v| v as f32));
    }

    /// [`SaScratch::raw_full`] over the `f32` tables, so the turbo
    /// lane's running sums start from the same values its deltas are
    /// priced in.
    fn raw_full32(&self) -> (f64, f64) {
        let mut fb = 0.0;
        let mut fc = 0.0;
        for (t, &pr) in self.proc_of.iter().enumerate() {
            if pr != NONE {
                fb -= self.lv32[t] as f64;
                fc += self.cc32[t * self.p + pr as usize] as f64;
            }
        }
        (fb, fc)
    }

    /// Runs the **turbo** lane's annealing loop on the loaded packet —
    /// the certified-lossy counterpart of [`SaScratch::anneal_loaded`].
    ///
    /// Same proposal distribution, cooling schedule, convergence rule
    /// and keep-best semantics as the exact engine, but none of its
    /// bit-level contracts:
    ///
    /// * task/processor draws use a multiply-high (Lemire) reduction —
    ///   one draw per proposal, no zone-rejection loop. The
    ///   "processor ≠ current" constraint is met by drawing from
    ///   `p − 1` values and skipping past the current processor
    ///   instead of redrawing (bias `< p/2⁶⁴`: immeasurable);
    /// * acceptance is the no-fallback midpoint threshold
    ///   ([`AcceptTable::turbo_threshold`]) on a per-temperature-step
    ///   precomputed `1/T` — zero `exp()` on the hot path
    ///   ([`TurboTuning::midpoint_accept`]);
    /// * the eq. 6 normalization is folded into two precomputed
    ///   multipliers (`w_b/ΔF_b`, `w_c/ΔF_c`), removing both per-move
    ///   divisions;
    /// * cost tables are optionally `f32` ([`TurboTuning::f32_tables`])
    ///   with `f64` accumulators.
    ///
    /// `rng` is whatever stream the caller chose —
    /// [`crate::rng_stream::CounterRng`] in the shipped configuration
    /// ([`TurboTuning::counter_rng`]), the sequential generator under
    /// attribution runs. Deterministic per `(rng stream, params)`;
    /// certified against the exact lane statistically (see
    /// `tests/sa_lane_turbo.rs` and `results/LANE_EQUIV.json`), never
    /// bitwise.
    pub fn anneal_turbo<R: RngCore + ?Sized>(
        &mut self,
        params: &AnnealParams,
        rng: &mut R,
        tuning: TurboTuning,
        want_trace: bool,
        counters: &mut LaneCounters,
    ) -> LaneOutcome {
        // Monomorphize the hot loop on the per-move toggles: the
        // branches are perfectly predictable, but keeping them out of
        // the loop body entirely frees issue slots and lets the
        // `TRACE = false` instantiations drop the sample bookkeeping
        // at compile time.
        match (tuning.f32_tables, tuning.midpoint_accept, want_trace) {
            (true, true, false) => self.turbo_core::<R, true, true, false>(params, rng, counters),
            (true, true, true) => self.turbo_core::<R, true, true, true>(params, rng, counters),
            (true, false, false) => self.turbo_core::<R, true, false, false>(params, rng, counters),
            (true, false, true) => self.turbo_core::<R, true, false, true>(params, rng, counters),
            (false, true, false) => self.turbo_core::<R, false, true, false>(params, rng, counters),
            (false, true, true) => self.turbo_core::<R, false, true, true>(params, rng, counters),
            (false, false, false) => {
                self.turbo_core::<R, false, false, false>(params, rng, counters)
            }
            (false, false, true) => self.turbo_core::<R, false, false, true>(params, rng, counters),
        }
    }

    /// The monomorphized turbo loop behind [`SaScratch::anneal_turbo`]
    /// (`F32` = `f32` cost tables, `MID` = midpoint acceptance,
    /// `TRACE` = record per-move samples).
    fn turbo_core<R: RngCore + ?Sized, const F32: bool, const MID: bool, const TRACE: bool>(
        &mut self,
        params: &AnnealParams,
        rng: &mut R,
        counters: &mut LaneCounters,
    ) -> LaneOutcome {
        let n = self.n;
        let p = self.p;
        assert!(n > 0 && p > 0, "empty packet");
        let table = accept_table(params.acceptance);
        if F32 {
            self.fill_f32();
        }

        match params.init {
            InitRule::Random => self.saturate_random(rng),
            InitRule::InOrder => self.saturate_in_order(),
        }
        let (mut fb, mut fc) = if F32 {
            self.raw_full32()
        } else {
            self.raw_full()
        };
        // Eq. 6 with the divisions hoisted: total = kb·F_b + kc·F_c.
        let kb = self.wb / self.range_b;
        let kc = self.wc / self.range_c;
        let mut cost = kb * fb + kc * fc;
        let mut best_cost = cost;
        self.best_proc_of.copy_from_slice(&self.proc_of);

        let mut trace = TRACE.then(|| PacketTrace {
            packet: 0,
            epoch_time: self.epoch_time,
            candidates: n,
            idle: p,
            samples: Vec::with_capacity(params.max_iters as usize),
        });

        let moves_per_temp = if params.moves_per_temp == 0 {
            (2 * n).max(8)
        } else {
            params.moves_per_temp
        };

        // Multiply-high bounded draw on a 32-bit word: maps it onto
        // [0, bound) with one widening multiply (bias < bound/2³²;
        // packet dimensions are far below 2¹⁶, so the bias is
        // negligible). One 64-bit draw supplies both indices of a
        // move — task from the high half, processor from the low half
        // — halving the draw count of the selection step.
        #[inline]
        fn mulhi32(v: u32, bound: u64) -> usize {
            ((u64::from(v) * bound) >> 32) as usize
        }

        let mut accepted_count = 0u64;
        let mut stable = 0u64;
        let mut k = 0u64;
        let mut moves = 0u64;
        // Decision counters stay in registers for the whole run; the
        // shared `LaneCounters` is settled once at the end.
        let mut n_shortcut = 0u64;
        let mut n_table = 0u64;
        while k < params.max_iters && stable < params.stable_iters {
            let temp = params.cooling.temperature(k);
            let frozen = temp <= TEMP_EPSILON;
            let inv_temp = if frozen { 0.0 } else { 1.0 / temp };
            let mut cost_changed = false;
            for _ in 0..moves_per_temp {
                let w = rng.next_u64();
                let task = mulhi32((w >> 32) as u32, n as u64);
                let cur = self.proc_of[task];
                let mut was_accepted = false;
                if !(p == 1 && cur == 0) {
                    // Draw a processor ≠ current by skipping past it
                    // (low half of the same word, no rejection loop).
                    let proc = if cur == NONE {
                        mulhi32(w as u32, p as u64)
                    } else {
                        let r = mulhi32(w as u32, (p - 1) as u64);
                        r + usize::from(r as u32 >= cur)
                    };
                    let occ = self.task_at[proc];
                    let (dfb, dfc) = if F32 {
                        self.price_move32(task, cur, proc, occ)
                    } else {
                        self.price_move(task, cur, proc, occ)
                    };
                    // Lossy shortcut: price the delta directly instead
                    // of re-deriving it from two full-cost sums (the
                    // exact lane's association; numerically different,
                    // covered by the statistical contract).
                    let delta = kb * dfb + kc * dfc;
                    let acc = if frozen {
                        n_shortcut += 1;
                        delta < 0.0
                    } else if MID {
                        // Unconditional draw: certain decisions burn a
                        // word the `f64` rule would skip, but the draw
                        // no longer waits on the threshold compare
                        // (the counter stream is cheap and certain
                        // buckets are <10% of warm-phase moves), and
                        // the accept decision is one branch-free
                        // integer compare.
                        let tb = table.turbo_threshold_bits(delta * inv_temp);
                        let certain = u64::from(tb == TURBO_DRAW_SPAN || tb == 0);
                        n_shortcut += certain;
                        n_table += 1 - certain;
                        (rng.next_u64() >> 11) < tb
                    } else {
                        table.accept_lossless(delta, temp, rng, counters)
                    };
                    if acc {
                        if occ == NONE {
                            if cur != NONE {
                                self.task_at[cur as usize] = NONE;
                            }
                        } else if cur != NONE {
                            self.proc_of[occ as usize] = cur;
                            self.task_at[cur as usize] = occ;
                        } else {
                            self.proc_of[occ as usize] = NONE;
                        }
                        self.proc_of[task] = proc as u32;
                        self.task_at[proc] = task as u32;
                        if TRACE {
                            fb += dfb;
                            fc += dfc;
                        }
                        was_accepted = true;
                        accepted_count += 1;
                        cost_changed |= delta.abs() > 1e-12;
                        cost += delta;
                    }
                }
                if let Some(tr) = trace.as_mut() {
                    tr.samples.push(TraceSample {
                        iter: moves,
                        temp,
                        f_b_raw: fb,
                        f_c_raw: fc,
                        f_b_norm: kb * fb,
                        f_c_norm: kc * fc,
                        f_total: cost,
                        accepted: was_accepted,
                    });
                }
                moves += 1;
            }
            // Keep-best at temperature-step granularity: the exact
            // lane snapshots the mapping on every improving move; here
            // the O(n) copy amortizes over the 2n moves of the step
            // (lossy — an intra-step best can be lost; covered by the
            // statistical contract).
            if params.keep_best && cost < best_cost {
                best_cost = cost;
                self.best_proc_of.copy_from_slice(&self.proc_of);
            }
            if cost_changed {
                stable = 0;
            } else {
                stable += 1;
            }
            k += 1;
        }
        counters.shortcut += n_shortcut;
        counters.table += n_table;

        let final_cost = if params.keep_best && best_cost < cost {
            self.proc_of.copy_from_slice(&self.best_proc_of);
            best_cost
        } else {
            cost
        };
        LaneOutcome {
            iterations: k,
            moves,
            accepted: accepted_count,
            final_cost,
            trace,
        }
    }

    /// Prices a transfer/swap of `task` (on `cur`) to `proc` (holding
    /// `occ`) from the `f64` tables — the exact lane's verbatim
    /// expressions, shared with [`SaScratch::anneal_loaded`]'s inline
    /// form.
    #[inline]
    fn price_move(&self, task: usize, cur: u32, proc: usize, occ: u32) -> (f64, f64) {
        let p = self.p;
        if occ == NONE {
            let (old_fb, old_fc) = if cur != NONE {
                (-self.lv[task], self.cc[task * p + cur as usize])
            } else {
                (0.0, 0.0)
            };
            (-self.lv[task] - old_fb, self.cc[task * p + proc] - old_fc)
        } else {
            let other = occ as usize;
            if cur != NONE {
                let f = cur as usize;
                let fc_before = self.cc[task * p + f] + self.cc[other * p + proc];
                let fc_after = self.cc[task * p + proc] + self.cc[other * p + f];
                (0.0, fc_after - fc_before)
            } else {
                let fb_before = -self.lv[other];
                let fb_after = -self.lv[task];
                let fc_before = self.cc[other * p + proc];
                let fc_after = self.cc[task * p + proc];
                (fb_after - fb_before, fc_after - fc_before)
            }
        }
    }

    /// [`SaScratch::price_move`] over the `f32` tables (`f64` deltas).
    #[inline]
    fn price_move32(&self, task: usize, cur: u32, proc: usize, occ: u32) -> (f64, f64) {
        let p = self.p;
        if occ == NONE {
            let (old_fb, old_fc) = if cur != NONE {
                (
                    -(self.lv32[task] as f64),
                    self.cc32[task * p + cur as usize] as f64,
                )
            } else {
                (0.0, 0.0)
            };
            (
                -(self.lv32[task] as f64) - old_fb,
                self.cc32[task * p + proc] as f64 - old_fc,
            )
        } else {
            let other = occ as usize;
            if cur != NONE {
                let f = cur as usize;
                let fc_before = self.cc32[task * p + f] as f64 + self.cc32[other * p + proc] as f64;
                let fc_after = self.cc32[task * p + proc] as f64 + self.cc32[other * p + f] as f64;
                (0.0, fc_after - fc_before)
            } else {
                let fb_before = -(self.lv32[other] as f64);
                let fb_after = -(self.lv32[task] as f64);
                let fc_before = self.cc32[other * p + proc] as f64;
                let fc_after = self.cc32[task * p + proc] as f64;
                (fb_after - fb_before, fc_after - fc_before)
            }
        }
    }
}

/// Shared configuration for [`anneal_packet_lane`].
#[derive(Debug, Clone)]
pub struct LaneRun<'a> {
    /// Load-balance weight `w_b`.
    pub wb: f64,
    /// Communication weight `w_c`.
    pub wc: f64,
    /// `ΔF_b` derivation.
    pub balance: BalanceRange,
    /// Annealing-loop knobs.
    pub params: &'a AnnealParams,
    /// Which lane executes the loop.
    pub lane: SaLane,
    /// Record the per-move trajectory.
    pub want_trace: bool,
}

/// Runs one packet through the selected lane and returns an exact-lane
/// compatible [`PacketOutcome`] — the single entry point the equality
/// oracle tests drive for every lane. The turbo arm runs on the
/// caller's `rng` as-is; the counter-based stream swap
/// ([`TurboTuning::counter_rng`]) happens one level up, in
/// [`crate::sa::SaScheduler`].
pub fn anneal_packet_lane<R: Rng + ?Sized>(
    packet: &AnnealingPacket,
    run: &LaneRun<'_>,
    rng: &mut R,
    scratch: &mut SaScratch,
    counters: &mut LaneCounters,
) -> PacketOutcome {
    match run.lane {
        SaLane::Exact => {
            let cm = CostModel::new(packet, run.wb, run.wc, run.balance);
            crate::annealer::anneal_packet(packet, &cm, run.params, rng, run.want_trace)
        }
        SaLane::Turbo => {
            scratch.load_packet(packet, run.wb, run.wc, run.balance);
            let out = scratch.anneal_turbo(
                run.params,
                rng,
                TurboTuning::default(),
                run.want_trace,
                counters,
            );
            PacketOutcome {
                assignment: scratch.assignments().collect(),
                iterations: out.iterations,
                moves: out.moves,
                accepted: out.accepted,
                final_cost: out.final_cost,
                trace: out.trace,
            }
        }
        lane => {
            scratch.load_packet(packet, run.wb, run.wc, run.balance);
            let out = scratch.anneal_loaded(
                run.params,
                rng,
                lane == SaLane::Quantized,
                run.want_trace,
                counters,
            );
            PacketOutcome {
                assignment: scratch.assignments().collect(),
                iterations: out.iterations,
                moves: out.moves,
                accepted: out.accepted,
                final_cost: out.final_cost,
                trace: out.trace,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rules() -> [AcceptanceRule; 2] {
        [AcceptanceRule::HeatBath, AcceptanceRule::Metropolis]
    }

    /// Exhaustive decision + draw-count parity over a hostile grid of
    /// (delta, temp) pairs, including every table-region boundary.
    #[test]
    fn lossless_accept_matches_exact_and_rng_state() {
        let xs = [
            -1e308,
            -701.0,
            -700.0,
            -37.5,
            -37.0,
            -37.0 + 1e-9,
            -36.7368,
            -30.0,
            -1.0,
            -1e-12,
            -0.0,
            0.0,
            1e-12,
            0.009,
            0.0098,
            0.5,
            1.0,
            2.0,
            37.9,
            38.0,
            38.1,
            39.99,
            40.0,
            40.1,
            699.0,
            700.0,
            700.5,
            744.0,
            749.0,
            750.0,
            1e6,
            1e308,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let temps = [1.0, 0.25, 3.7, 1e-6, 1e6];
        for rule in rules() {
            let table = accept_table(rule);
            let mut c = LaneCounters::default();
            for (i, &x) in xs.iter().enumerate() {
                for (j, &temp) in temps.iter().enumerate() {
                    let delta = x * temp;
                    let seed = (i * 31 + j) as u64;
                    let mut r1 = StdRng::seed_from_u64(seed);
                    let mut r2 = StdRng::seed_from_u64(seed);
                    // Repeat so both branches of a probabilistic
                    // decision are exercised on a drifting stream.
                    for _ in 0..64 {
                        let e = accept(rule, delta, temp, &mut r1);
                        let f = table.accept_lossless(delta, temp, &mut r2, &mut c);
                        assert_eq!(e, f, "{rule:?} delta={delta} temp={temp}");
                    }
                    assert_eq!(
                        r1.next_u64(),
                        r2.next_u64(),
                        "draw-count divergence at {rule:?} delta={delta} temp={temp}"
                    );
                }
            }
            assert!(c.decisions() > 0);
        }
    }

    #[test]
    fn zero_delta_parity_and_draw_counts() {
        let mut c = LaneCounters::default();
        // Metropolis at delta == 0: certain accept, no draw.
        let t = accept_table(AcceptanceRule::Metropolis);
        let mut r = StdRng::seed_from_u64(1);
        let before = r.clone();
        assert!(t.accept_lossless(0.0, 1.0, &mut r, &mut c));
        let mut b = before;
        assert_eq!(
            r.next_u64(),
            b.next_u64(),
            "Metropolis delta=0 must not draw"
        );
        // HeatBath at delta == 0: p = 1/2, exactly one draw, same
        // decision as the exact rule.
        let t = accept_table(AcceptanceRule::HeatBath);
        for seed in 0..50 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            assert_eq!(
                accept(AcceptanceRule::HeatBath, 0.0, 1.0, &mut r1),
                t.accept_lossless(0.0, 1.0, &mut r2, &mut c)
            );
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn frozen_temperature_is_strict_descent_without_draws() {
        let mut c = LaneCounters::default();
        for rule in rules() {
            let t = accept_table(rule);
            for temp in [0.0, 1e-300, TEMP_EPSILON, -1.0] {
                let mut r = StdRng::seed_from_u64(9);
                let before = r.clone();
                assert!(t.accept_lossless(-0.5, temp, &mut r, &mut c));
                assert!(!t.accept_lossless(0.5, temp, &mut r, &mut c));
                assert!(!t.accept_lossless(0.0, temp, &mut r, &mut c));
                // NaN delta at frozen temperature: reject, no panic.
                assert!(!t.accept_lossless(f64::NAN, temp, &mut r, &mut c));
                let mut b = before;
                assert_eq!(r.next_u64(), b.next_u64(), "frozen decisions must not draw");
            }
        }
    }

    #[test]
    fn table_boundaries_are_nan_free() {
        // First/last bucket edges and the region seams must produce
        // finite bracket values and panic-free decisions.
        for rule in rules() {
            let t = accept_table(rule);
            for b in &t.buckets {
                assert!(b.lo.is_finite() && b.hi.is_finite() && b.mid.is_finite());
                assert!(b.lo <= b.hi);
                assert!((0.0..=1.0).contains(&b.mid));
            }
            assert!(t.buckets.first().expect("nonempty").exact, "{rule:?}");
            assert!(!t.buckets.last().expect("nonempty").exact, "{rule:?}");
            let mut c = LaneCounters::default();
            let mut r = StdRng::seed_from_u64(3);
            for x in [
                t.x_lo,
                t.x_lo + 1e-9,
                t.tail_from - 1e-9,
                t.tail_from,
                t.reject_above,
            ] {
                let d = t.accept_lossless(x, 1.0, &mut r, &mut c);
                let _ = d;
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn nan_delta_panics_like_the_exact_rule() {
        // The exact lane panics inside gen_bool on a NaN probability;
        // the table delegates NaN to the same path.
        let t = accept_table(AcceptanceRule::HeatBath);
        let mut c = LaneCounters::default();
        let mut r = StdRng::seed_from_u64(4);
        t.accept_lossless(f64::NAN, 1.0, &mut r, &mut c);
    }

    #[test]
    fn quantized_rate_tracks_exact_probability() {
        // Statistical oracle for the lossy lane: over many draws the
        // midpoint threshold's acceptance rate matches the true
        // Boltzmann probability to bucket-width accuracy.
        for rule in rules() {
            let t = accept_table(rule);
            for &x in &[0.05, 0.3, 0.9, 2.0, 5.0] {
                let p_true = acceptance_probability(rule, x, 1.0);
                let mut c = LaneCounters::default();
                let mut r = StdRng::seed_from_u64(77);
                let trials = 20_000;
                let hits = (0..trials)
                    .filter(|_| t.accept_quantized(x, 1.0, &mut r, &mut c))
                    .count();
                let rate = hits as f64 / trials as f64;
                assert!(
                    (rate - p_true).abs() < 0.02,
                    "{rule:?} x={x}: rate {rate} vs p {p_true}"
                );
            }
        }
    }

    #[test]
    fn quantized_consumes_the_same_number_of_draws() {
        // Even when decisions differ, the lossy lane must keep the
        // stream position of the exact lane (one draw per in-range
        // proposal, none for shortcuts).
        for rule in rules() {
            let t = accept_table(rule);
            for &x in &[-50.0, -1.0, 0.0, 0.5, 3.0, 39.0, 1000.0] {
                let mut c = LaneCounters::default();
                let mut r1 = StdRng::seed_from_u64(5);
                let mut r2 = StdRng::seed_from_u64(5);
                for _ in 0..32 {
                    accept(rule, x, 1.0, &mut r1);
                    t.accept_quantized(x, 1.0, &mut r2, &mut c);
                }
                assert_eq!(r1.next_u64(), r2.next_u64(), "{rule:?} x={x}");
            }
        }
    }

    #[test]
    fn lane_names_round_trip() {
        for lane in SaLane::ALL {
            assert_eq!(lane.name().parse::<SaLane>(), Ok(lane));
            assert_eq!(lane.to_string(), lane.name());
            // Case-insensitive parsing (satellite: CLI ergonomics).
            assert_eq!(lane.name().to_ascii_uppercase().parse::<SaLane>(), Ok(lane));
        }
        assert_eq!("Delta-Table".parse::<SaLane>(), Ok(SaLane::DeltaTable));
        assert_eq!("TURBO".parse::<SaLane>(), Ok(SaLane::Turbo));
        assert_eq!(SaLane::default(), SaLane::DeltaTable);
        assert!(SaLane::Exact.is_lossless());
        assert!(SaLane::DeltaTable.is_lossless());
        assert!(!SaLane::Quantized.is_lossless());
        assert!(!SaLane::Turbo.is_lossless());
        assert_eq!(SaLane::name_list(), "exact, delta-table, quantized, turbo");
        let err = "bogus".parse::<SaLane>().unwrap_err();
        assert_eq!(
            err,
            "unknown SA lane 'bogus' (expected one of: exact, delta-table, quantized, turbo)"
        );
    }

    /// Pins the midpoint-threshold invariant documented on `Bucket::mid`
    /// and surfaced by [`AcceptTable::turbo_threshold`]: the threshold
    /// is the exact probability at the bucket center, it sits inside the
    /// conservative bracket, and the region shortcuts match the table's
    /// provable-decision seams.
    #[test]
    fn midpoint_threshold_semantics_are_pinned() {
        for rule in rules() {
            let t = accept_table(rule);
            let w = 1.0 / t.inv_w;
            for (i, b) in t.buckets.iter().enumerate() {
                let x_center = t.x_lo + (i as f64 + 0.5) * w;
                assert_eq!(
                    b.mid,
                    acceptance_probability(rule, x_center, 1.0),
                    "{rule:?} bucket {i}: mid must be the exact center probability"
                );
                assert!(
                    b.lo <= b.mid && b.mid <= b.hi,
                    "{rule:?} bucket {i}: mid outside the conservative bracket"
                );
                // The no-fallback rule reads mid for every in-range x,
                // including the exact-marked buckets the lossless lane
                // delegates.
                assert_eq!(t.turbo_threshold(x_center), b.mid, "{rule:?} bucket {i}");
            }
            // Region seams.
            assert_eq!(t.turbo_threshold(t.x_lo), 1.0);
            assert_eq!(t.turbo_threshold(f64::NEG_INFINITY), 1.0);
            assert_eq!(t.turbo_threshold(t.tail_from), 0.0);
            assert_eq!(t.turbo_threshold(701.0), 0.0);
            assert_eq!(t.turbo_threshold(f64::INFINITY), 0.0);
            // NaN saturates to bucket 0 (near-certain accept), no panic.
            assert!(t.turbo_threshold(f64::NAN) > 0.99);
            // Monotone non-increasing scan (up to bracket slack).
            let mut prev = 1.0;
            let mut x = t.x_lo;
            while x < t.tail_from + 1.0 {
                let th = t.turbo_threshold(x);
                assert!(
                    th <= prev + 2.0 * TABLE_SLACK,
                    "{rule:?}: threshold not monotone at x={x}"
                );
                prev = th;
                x += w * 0.37;
            }
        }
    }

    /// Pins the integer-draw-space form the turbo loop decides on:
    /// everywhere, `turbo_threshold_bits(x)` is exactly
    /// `⌊turbo_threshold(x) · 2⁵³⌋` (with the certain regions mapping
    /// to `TURBO_DRAW_SPAN` / `0`), so the two forms disagree on a
    /// draw with probability at most `2⁻⁵³` per move.
    #[test]
    fn turbo_threshold_bits_mirror_the_float_rule() {
        for rule in rules() {
            let t = accept_table(rule);
            let w = 1.0 / t.inv_w;
            let mut x = t.x_lo - 1.0;
            while x < t.tail_from + 1.0 {
                let th = t.turbo_threshold(x);
                let bits = t.turbo_threshold_bits(x);
                assert_eq!(
                    bits,
                    (th * TURBO_DRAW_SPAN as f64) as u64,
                    "{rule:?}: bits form diverges at x={x}"
                );
                assert!(bits <= TURBO_DRAW_SPAN, "{rule:?} at x={x}");
                x += w * 0.37;
            }
            // Region seams and non-finite inputs agree with the f64
            // form's saturation behavior.
            assert_eq!(t.turbo_threshold_bits(f64::NEG_INFINITY), TURBO_DRAW_SPAN);
            assert_eq!(t.turbo_threshold_bits(t.x_lo), TURBO_DRAW_SPAN);
            assert_eq!(t.turbo_threshold_bits(t.tail_from), 0);
            assert_eq!(t.turbo_threshold_bits(f64::INFINITY), 0);
            let nan_bits = t.turbo_threshold_bits(f64::NAN);
            assert!(
                nan_bits > (TURBO_DRAW_SPAN / 100) * 99,
                "NaN saturates to near-certain accept"
            );
        }
    }

    #[test]
    fn accept_turbo_never_falls_back_and_tracks_the_exact_rate() {
        for rule in rules() {
            let t = accept_table(rule);
            let mut c = LaneCounters::default();
            let mut r = StdRng::seed_from_u64(11);
            let mut n = 0u64;
            // A hostile sweep including the regions the lossless lane
            // delegates to exp(): exact-marked buckets and the
            // Metropolis x > 700 overflow band.
            for &x in &[
                -100.0,
                -37.0,
                -36.9,
                -1.0,
                0.0,
                1e-9,
                0.05,
                0.5,
                3.0,
                37.9,
                39.0,
                500.0,
                699.0,
                701.0,
                1e6,
                f64::NAN,
            ] {
                for _ in 0..50 {
                    t.accept_turbo(x, 1.0, &mut r, &mut c);
                    n += 1;
                }
            }
            assert_eq!(c.fallback, 0, "{rule:?}: turbo must never fall back");
            assert_eq!(c.decisions(), n, "{rule:?}");
            assert!(c.shortcut > 0 && c.table > 0, "{rule:?}");
            // Frozen temperature: strict descent, no draw.
            let mut before = r.clone();
            assert!(t.accept_turbo(-0.5, 0.0, &mut r, &mut c));
            assert!(!t.accept_turbo(0.5, 0.0, &mut r, &mut c));
            assert_eq!(r.next_u64(), before.next_u64());
            // Statistical agreement with the exact probability at a few
            // mid-range points (same bound as the quantized lane).
            for &x in &[0.1, 0.7, 2.5] {
                let p_true = acceptance_probability(rule, x, 1.0);
                let mut r = StdRng::seed_from_u64(123);
                let trials = 20_000;
                let hits = (0..trials)
                    .filter(|_| t.accept_turbo(x, 1.0, &mut r, &mut c))
                    .count();
                let rate = hits as f64 / trials as f64;
                assert!(
                    (rate - p_true).abs() < 0.02,
                    "{rule:?} x={x}: rate {rate} vs p {p_true}"
                );
            }
        }
    }

    #[test]
    fn turbo_lane_replays_deterministically_per_stream() {
        use crate::rng_stream::CounterRng;

        // Same packet + same (seed, packet-index) stream → identical
        // outcome; a different stream reaches a different trajectory.
        let params = AnnealParams::default();
        let packet = crate::packet::AnnealingPacket {
            tasks: (0..6).map(TaskId::from_index).collect(),
            procs: (0..3).map(ProcId::from_index).collect(),
            levels: vec![9, 7, 5, 4, 2, 1],
            comm_cost: vec![vec![3, 0, 2]; 6],
            worst_comm: vec![3; 6],
            epoch_time: 0,
        };
        let run = |seed: u64, stream: u64| {
            let mut scratch = SaScratch::new();
            let mut counters = LaneCounters::default();
            scratch.load_packet(&packet, 0.5, 0.5, BalanceRange::Full);
            let mut rng = CounterRng::new(seed, stream);
            let out = scratch.anneal_turbo(
                &params,
                &mut rng,
                TurboTuning::default(),
                false,
                &mut counters,
            );
            assert_eq!(counters.fallback, 0, "turbo never falls back");
            (out.final_cost, scratch.proc_of.clone(), out.accepted)
        };
        assert_eq!(run(42, 0), run(42, 0));
        let a = run(42, 0);
        let b = run(43, 0);
        let c2 = run(42, 1);
        // Different streams should decorrelate the accepted-move count
        // (not a hard guarantee per pair, so only require *some*
        // difference across the two perturbations).
        assert!(a != b || a != c2, "distinct streams replayed identically");
    }

    #[test]
    fn draw_plan_replicates_gen_range() {
        for bound in [1usize, 2, 3, 5, 7, 8, 13, 64, 100] {
            let plan = Draw::new(bound as u64);
            let mut r1 = StdRng::seed_from_u64(bound as u64);
            let mut r2 = StdRng::seed_from_u64(bound as u64);
            for _ in 0..200 {
                assert_eq!(r1.gen_range(0..bound), plan.sample(&mut r2));
            }
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn counters_partition_decisions() {
        let t = accept_table(AcceptanceRule::HeatBath);
        let mut c = LaneCounters::default();
        let mut r = StdRng::seed_from_u64(6);
        let mut n = 0u64;
        for &x in &[-100.0, -5.0, 0.0, 0.1, 5.0, 39.0, 800.0] {
            for _ in 0..10 {
                t.accept_lossless(x, 1.0, &mut r, &mut c);
                n += 1;
            }
        }
        assert_eq!(c.decisions(), n);
        assert!(c.shortcut > 0 && c.table > 0);
        let mut merged = LaneCounters::default();
        merged.merge(&c);
        assert_eq!(merged, c);
    }
}
