//! The Highest Level First baseline (paper §1, §6).
//!
//! "A solution is approximated by suboptimal heuristics such as the well
//! known Highest Level First (HLF) list algorithm" — the paper's
//! comparison baseline. At each epoch the ready tasks are ranked by task
//! level `n_i` and placed on free processors; the placement itself is
//! "arbitrary", which this implementation makes concrete as either the
//! lowest-numbered idle processor (deterministic) or a seeded random
//! idle processor (for the statistical experiments).

use anneal_graph::levels::bottom_levels;
use anneal_graph::{TaskId, Work};
use anneal_sim::{EpochContext, OnlineScheduler};
use anneal_topology::ProcId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How HLF picks among idle processors (the paper calls it "arbitrary").
#[derive(Debug, Clone)]
pub enum Placement {
    /// Lowest-numbered idle processor first (deterministic).
    FirstIdle,
    /// Uniformly random idle processor, reproducible from the seed.
    Random(u64),
}

/// Highest Level First list scheduler.
#[derive(Debug)]
pub struct HlfScheduler {
    levels: Option<Vec<Work>>,
    placement: Placement,
    rng: Option<StdRng>,
}

impl HlfScheduler {
    /// Deterministic HLF (first-idle placement).
    pub fn new() -> Self {
        HlfScheduler {
            levels: None,
            placement: Placement::FirstIdle,
            rng: None,
        }
    }

    /// HLF with a specific placement rule.
    pub fn with_placement(placement: Placement) -> Self {
        let rng = match &placement {
            Placement::Random(seed) => Some(StdRng::seed_from_u64(*seed)),
            Placement::FirstIdle => None,
        };
        HlfScheduler {
            levels: None,
            placement,
            rng,
        }
    }
}

impl Default for HlfScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineScheduler for HlfScheduler {
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        let levels = self.levels.get_or_insert_with(|| bottom_levels(ctx.graph));
        let mut ranked: Vec<TaskId> = ctx.ready.to_vec();
        ranked.sort_by_key(|&t| (std::cmp::Reverse(levels[t.index()]), t));
        let mut procs: Vec<ProcId> = ctx.idle.to_vec();
        if let (Placement::Random(_), Some(rng)) = (&self.placement, self.rng.as_mut()) {
            procs.shuffle(rng);
        }
        for (&t, &p) in ranked.iter().zip(procs.iter()) {
            out.push((t, p));
        }
    }

    fn name(&self) -> &str {
        "hlf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, SimConfig};
    use anneal_topology::builders::{bus, hypercube};
    use anneal_topology::CommParams;

    /// Two chains of different lengths sharing a root.
    fn two_chains() -> anneal_graph::TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(us(1.0));
        let long1 = b.add_task(us(10.0));
        let long2 = b.add_task(us(10.0));
        let long3 = b.add_task(us(10.0));
        let short1 = b.add_task(us(10.0));
        b.add_edge(root, long1, 0).unwrap();
        b.add_edge(long1, long2, 0).unwrap();
        b.add_edge(long2, long3, 0).unwrap();
        b.add_edge(root, short1, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hlf_is_optimal_on_two_chains() {
        // With 2 procs and no comm, HLF runs the long chain immediately:
        // makespan = 1 + 30 = 31us (short chain fits in parallel).
        let g = two_chains();
        let mut s = HlfScheduler::new();
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let r = simulate(&g, &bus(2), &CommParams::zero(), &mut s, &cfg).unwrap();
        assert_eq!(r.makespan, us(31.0));
        r.audit(&g).unwrap();
    }

    #[test]
    fn first_idle_placement_deterministic() {
        let g = two_chains();
        let run = || {
            let mut s = HlfScheduler::new();
            simulate(
                &g,
                &hypercube(3),
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn random_placement_reproducible_per_seed() {
        let g = two_chains();
        let run = |seed| {
            let mut s = HlfScheduler::with_placement(Placement::Random(seed));
            simulate(
                &g,
                &hypercube(3),
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap()
            .placement
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn audits_on_paper_architectures() {
        let g = two_chains();
        for topo in anneal_topology::builders::paper_architectures() {
            let mut s = HlfScheduler::new();
            let r = simulate(
                &g,
                &topo,
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap();
            r.audit(&g).unwrap();
        }
    }
}
