//! # anneal-core
//!
//! The primary contribution of D'Hollander & Devis (ICPP 1991): scheduling
//! a **directed** task graph onto a multicomputer by **staged simulated
//! annealing**, plus the Highest Level First baseline and supporting
//! solvers.
//!
//! ## The algorithm (paper §4–5)
//!
//! Until all tasks are assigned:
//!
//! 1. Assemble an **annealing packet**: the ready tasks (no unfinished
//!    predecessors) and the idle processors ([`packet`]).
//! 2. For cooling temperatures `Temp_k` until convergence (cost constant
//!    for five iterations) or an iteration cap ([`cooling`], [`annealer`]):
//!    * arbitrarily select a task `t_i` and a processor `p_j ≠ m_i`; if
//!      `p_j` is idle assign `t_i` to it (possibly removing `t_i` from
//!      another processor), otherwise exchange the two tasks
//!      ([`mapping`]);
//!    * accept with the Boltzmann probability `B(ΔF, Temp_k) =
//!      1/(1+e^{ΔF/Temp})` ([`boltzmann`]).
//! 3. Dispatch the selected tasks; unassigned tasks move to the next
//!    packet.
//!
//! The cost `F = w_c·F_c/ΔF_c + w_b·F_b/ΔF_b` combines the level-based
//! load-balancing term `F_b = −Σ n_i s(i)` and the eq. 4 communication
//! term ([`cost`]).
//!
//! ## Contents
//!
//! * [`sa::SaScheduler`] — the staged SA scheduler (an
//!   `anneal_sim::OnlineScheduler`).
//! * [`hlf::HlfScheduler`] / [`list::ListScheduler`] — the Highest Level
//!   First baseline and a general priority list-scheduling framework.
//! * [`optimal`] — exact branch-and-bound makespan for small no-comm
//!   instances.
//! * [`anomaly`] — Graham (1969) multiprocessor anomaly instances; the
//!   paper observes SA "is able to optimally solve the Graham list
//!   scheduling anomalies".
//! * [`lane`] — the delta-table SA fast lane ([`lane::SaLane`]): flat
//!   per-packet cost tables and a quantized Boltzmann acceptance table,
//!   lossless by construction against the exact engine; plus the
//!   certified-lossy **turbo** lane ([`lane::SaLane::Turbo`]) gated by a
//!   corpus-scale statistical equivalence study.
//! * [`rng_stream`] — counter-based RNG streams for the turbo lane:
//!   draw `k` of stream `(seed, packet)` is a pure function, so draws
//!   batch with no sequential dependency.
//! * [`parallel`] — seeded multi-restart SA across threads.
//! * [`eval`] — the shared [`Evaluator`] layer for mapping-based
//!   schedulers: a full-replay reference and an incremental
//!   fixed-mapping kernel with bit-identical makespans.
//! * [`static_sa`] — whole-graph annealing (the §3 balancing-problem
//!   style) with simulated-makespan cost priced through [`eval`], for
//!   comparison with the staged algorithm.
//! * [`mct`] — HLF ranking with greedy minimum-eq.4 placement, isolating
//!   the value of placement awareness from stochastic search.
//! * [`heft`] / [`cpop`] — HEFT-style earliest-finish-time and
//!   CPOP-style critical-path-on-one-processor heuristics, adapted to
//!   the eq. 4 communication model (portfolio rivals for `anneal-arena`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annealer;
pub mod anomaly;
pub mod boltzmann;
pub mod cooling;
pub mod cost;
pub mod cpop;
pub mod eval;
pub mod heft;
pub mod hlf;
pub mod lane;
pub mod list;
pub mod mapping;
pub mod mct;
pub mod optimal;
pub mod packet;
pub mod parallel;
pub mod rng_stream;
pub mod sa;
pub mod static_sa;
pub mod trace;

pub use cpop::CpopScheduler;
pub use eval::{level_dispatch_order, replay_mapping, Evaluator, EvaluatorKind};
pub use heft::HeftScheduler;
pub use hlf::HlfScheduler;
pub use lane::{accept_table, AcceptTable, LaneCounters, SaLane, SaScratch, TurboTuning};
pub use mct::MctScheduler;
pub use parallel::{PoolStats, ScratchPool};
pub use rng_stream::{stream_draw, CounterRng};
pub use sa::{SaConfig, SaScheduler, SaStats};
pub use trace::{PacketTrace, TraceSample};
