//! Cost-trajectory recording (the paper's Figure 1).

/// One SA iteration's observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Iteration index within the packet.
    pub iter: u64,
    /// Temperature at this iteration.
    pub temp: f64,
    /// Raw load-balancing cost `F_b = −Σ n_i s(i)` (ns units).
    pub f_b_raw: f64,
    /// Raw communication cost `F_c` (ns units).
    pub f_c_raw: f64,
    /// Normalized weighted balance term `w_b·F_b/ΔF_b`.
    pub f_b_norm: f64,
    /// Normalized weighted communication term `w_c·F_c/ΔF_c`.
    pub f_c_norm: f64,
    /// Total cost `F = w_c·F_c/ΔF_c + w_b·F_b/ΔF_b`.
    pub f_total: f64,
    /// Whether the proposed move was accepted.
    pub accepted: bool,
}

impl TraceSample {
    /// The weighted raw cost `w_b·F_b + w_c·F_c` (ns units) — the
    /// un-normalized trajectory Figure 1 plots alongside the
    /// normalized total.
    pub fn weighted_raw(&self, wb: f64, wc: f64) -> f64 {
        wb * self.f_b_raw + wc * self.f_c_raw
    }
}

/// The trajectory of one annealing packet.
#[derive(Debug, Clone, Default)]
pub struct PacketTrace {
    /// Sequential packet index (0-based) within the run.
    pub packet: u64,
    /// Simulated time of the epoch (ns).
    pub epoch_time: u64,
    /// Ready-task candidates in the packet.
    pub candidates: usize,
    /// Idle processors in the packet.
    pub idle: usize,
    /// Per-iteration samples.
    pub samples: Vec<TraceSample>,
}

impl PacketTrace {
    /// Final total cost (0 if no samples).
    pub fn final_cost(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.f_total)
    }

    /// Initial total cost (0 if no samples).
    pub fn initial_cost(&self) -> f64 {
        self.samples.first().map_or(0.0, |s| s.f_total)
    }

    /// Fraction of accepted moves.
    pub fn acceptance_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.accepted() as f64 / self.samples.len() as f64
    }

    /// Number of accepted moves.
    pub fn accepted(&self) -> u64 {
        self.samples.iter().filter(|s| s.accepted).count() as u64
    }

    /// Writes every sample as one `"sa.trace.sample"` event line.
    ///
    /// Float fields render as JSON strings (see
    /// [`EventWriter::float`](anneal_obs::EventWriter::float)), so the
    /// file stays parseable by `anneal_obs::json` and metric lines can
    /// share it — [`MetricsRegistry::merge_jsonl`](anneal_obs::MetricsRegistry::merge_jsonl)
    /// skips trace events.
    pub fn export_jsonl(&self, sink: &mut anneal_obs::JsonlSink) {
        for s in &self.samples {
            sink.event("sa.trace.sample")
                .num("packet", self.packet)
                .num("epoch_time", self.epoch_time)
                .num("candidates", self.candidates as u64)
                .num("idle", self.idle as u64)
                .num("iter", s.iter)
                .float("temp", s.temp)
                .float("f_b_raw", s.f_b_raw)
                .float("f_c_raw", s.f_c_raw)
                .float("f_b_norm", s.f_b_norm)
                .float("f_c_norm", s.f_c_norm)
                .float("f_total", s.f_total)
                .num("accepted", u64::from(s.accepted))
                .finish();
        }
    }

    /// Accumulates this packet's shape into `r` (`sa.trace.*` keys).
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sa.trace.packets", 1);
        r.add("sa.trace.samples", self.samples.len() as u64);
        r.add("sa.trace.accepted", self.accepted());
        r.hwm("sa.trace.max_samples", self.samples.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iter: u64, f: f64, acc: bool) -> TraceSample {
        TraceSample {
            iter,
            temp: 1.0,
            f_b_raw: -f,
            f_c_raw: f,
            f_b_norm: -f,
            f_c_norm: f,
            f_total: f,
            accepted: acc,
        }
    }

    #[test]
    fn cost_endpoints() {
        let t = PacketTrace {
            packet: 0,
            epoch_time: 0,
            candidates: 3,
            idle: 1,
            samples: vec![
                sample(0, 5.0, true),
                sample(1, 2.0, false),
                sample(2, 1.0, true),
            ],
        };
        assert_eq!(t.initial_cost(), 5.0);
        assert_eq!(t.final_cost(), 1.0);
        assert!((t.acceptance_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_raw_combines_terms() {
        let s = sample(0, 4.0, true);
        // f_b_raw = -4, f_c_raw = 4
        assert!((s.weighted_raw(0.75, 0.25) - (-3.0 + 1.0)).abs() < 1e-12);
        assert_eq!(s.weighted_raw(0.0, 1.0), 4.0);
    }

    #[test]
    fn exports_jsonl_and_records() {
        let t = PacketTrace {
            packet: 2,
            epoch_time: 100,
            candidates: 3,
            idle: 1,
            samples: vec![sample(0, 5.0, true), sample(1, 2.0, false)],
        };
        let mut sink = anneal_obs::JsonlSink::new();
        t.export_jsonl(&mut sink);
        let lines: Vec<&str> = sink.as_str().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\": \"sa.trace.sample\", \"packet\": 2"));
        assert!(lines[0].contains("\"accepted\": 1"));
        assert!(lines[1].contains("\"accepted\": 0"));
        // metric merge skips trace events entirely
        let mut reg = anneal_obs::MetricsRegistry::new();
        assert_eq!(reg.merge_jsonl(sink.as_str()).unwrap(), 0);
        t.record_into(&mut reg);
        assert_eq!(reg.counter("sa.trace.packets"), 1);
        assert_eq!(reg.counter("sa.trace.samples"), 2);
        assert_eq!(reg.counter("sa.trace.accepted"), 1);
        assert_eq!(reg.gauge("sa.trace.max_samples"), 2);
    }

    #[test]
    fn empty_trace() {
        let t = PacketTrace::default();
        assert_eq!(t.initial_cost(), 0.0);
        assert_eq!(t.final_cost(), 0.0);
        assert_eq!(t.acceptance_rate(), 0.0);
    }
}
