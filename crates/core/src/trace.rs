//! Cost-trajectory recording (the paper's Figure 1).

/// One SA iteration's observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Iteration index within the packet.
    pub iter: u64,
    /// Temperature at this iteration.
    pub temp: f64,
    /// Raw load-balancing cost `F_b = −Σ n_i s(i)` (ns units).
    pub f_b_raw: f64,
    /// Raw communication cost `F_c` (ns units).
    pub f_c_raw: f64,
    /// Normalized weighted balance term `w_b·F_b/ΔF_b`.
    pub f_b_norm: f64,
    /// Normalized weighted communication term `w_c·F_c/ΔF_c`.
    pub f_c_norm: f64,
    /// Total cost `F = w_c·F_c/ΔF_c + w_b·F_b/ΔF_b`.
    pub f_total: f64,
    /// Whether the proposed move was accepted.
    pub accepted: bool,
}

/// The trajectory of one annealing packet.
#[derive(Debug, Clone, Default)]
pub struct PacketTrace {
    /// Sequential packet index (0-based) within the run.
    pub packet: u64,
    /// Simulated time of the epoch (ns).
    pub epoch_time: u64,
    /// Ready-task candidates in the packet.
    pub candidates: usize,
    /// Idle processors in the packet.
    pub idle: usize,
    /// Per-iteration samples.
    pub samples: Vec<TraceSample>,
}

impl PacketTrace {
    /// Final total cost (0 if no samples).
    pub fn final_cost(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.f_total)
    }

    /// Initial total cost (0 if no samples).
    pub fn initial_cost(&self) -> f64 {
        self.samples.first().map_or(0.0, |s| s.f_total)
    }

    /// Fraction of accepted moves.
    pub fn acceptance_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.accepted).count() as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iter: u64, f: f64, acc: bool) -> TraceSample {
        TraceSample {
            iter,
            temp: 1.0,
            f_b_raw: -f,
            f_c_raw: f,
            f_b_norm: -f,
            f_c_norm: f,
            f_total: f,
            accepted: acc,
        }
    }

    #[test]
    fn cost_endpoints() {
        let t = PacketTrace {
            packet: 0,
            epoch_time: 0,
            candidates: 3,
            idle: 1,
            samples: vec![
                sample(0, 5.0, true),
                sample(1, 2.0, false),
                sample(2, 1.0, true),
            ],
        };
        assert_eq!(t.initial_cost(), 5.0);
        assert_eq!(t.final_cost(), 1.0);
        assert!((t.acceptance_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = PacketTrace::default();
        assert_eq!(t.initial_cost(), 0.0);
        assert_eq!(t.final_cost(), 0.0);
        assert_eq!(t.acceptance_rate(), 0.0);
    }
}
