//! The packet mapping function `m : T → P` and its move scheme
//! (paper §5, step 2a).
//!
//! A mapping assigns at most one packet task to each idle processor.
//! Moves follow the paper exactly: pick a task `t_i` and a processor
//! `p_j ≠ m_i`;
//!
//! * if `p_j` is idle, assign `t_i` to `p_j` (possibly removing `t_i`
//!   from another processor) — [`Move::Transfer`];
//! * if `p_j` is busy executing `t_j`, exchange the two —
//!   [`Move::Swap`].
//!
//! Both moves preserve the number of assigned tasks, so a mapping that
//! starts saturated (`min(N, N_idle)` tasks placed) stays saturated.

use rand::seq::SliceRandom;
use rand::Rng;

/// A partial injective mapping between packet-task indices and
/// packet-processor indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketMapping {
    proc_of_task: Vec<Option<usize>>,
    task_at_proc: Vec<Option<usize>>,
}

/// A reversible move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Task `task` moves to the empty processor `to` (leaving
    /// `from`, its previous processor, if it had one).
    Transfer {
        /// Moving task index.
        task: usize,
        /// Destination processor index (must be empty).
        to: usize,
        /// Previous processor of `task`, if any.
        from: Option<usize>,
    },
    /// Task `task` takes processor `to`, displacing task `other`
    /// (which moves to `task`'s previous processor, or becomes
    /// unassigned if `task` had none).
    Swap {
        /// Moving task index.
        task: usize,
        /// The task currently occupying `to`.
        other: usize,
        /// Destination processor index.
        to: usize,
        /// Previous processor of `task`, if any.
        from: Option<usize>,
    },
}

impl PacketMapping {
    /// An empty mapping for `n_tasks × n_procs`.
    pub fn new(n_tasks: usize, n_procs: usize) -> Self {
        PacketMapping {
            proc_of_task: vec![None; n_tasks],
            task_at_proc: vec![None; n_procs],
        }
    }

    /// Number of packet tasks.
    pub fn num_tasks(&self) -> usize {
        self.proc_of_task.len()
    }

    /// Number of packet processors.
    pub fn num_procs(&self) -> usize {
        self.task_at_proc.len()
    }

    /// Processor index of a task, if assigned.
    #[inline]
    pub fn proc_of(&self, task: usize) -> Option<usize> {
        self.proc_of_task[task]
    }

    /// Task index on a processor, if occupied.
    #[inline]
    pub fn task_at(&self, proc: usize) -> Option<usize> {
        self.task_at_proc[proc]
    }

    /// Number of assigned tasks.
    pub fn assigned_count(&self) -> usize {
        self.proc_of_task.iter().filter(|p| p.is_some()).count()
    }

    /// Iterates `(task, proc)` pairs in task order.
    pub fn assignments(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.proc_of_task
            .iter()
            .enumerate()
            .filter_map(|(t, p)| p.map(|p| (t, p)))
    }

    /// Saturates the mapping: assigns the first `min(N, P)` tasks in a
    /// random permutation to a random permutation of processors.
    pub fn saturate_random<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut tasks: Vec<usize> = (0..self.num_tasks()).collect();
        let mut procs: Vec<usize> = (0..self.num_procs()).collect();
        tasks.shuffle(rng);
        procs.shuffle(rng);
        self.clear();
        for (&t, &p) in tasks.iter().zip(procs.iter()) {
            self.place(t, p);
        }
    }

    /// Saturates deterministically: task `i` onto processor `i`.
    pub fn saturate_in_order(&mut self) {
        self.clear();
        let k = self.num_tasks().min(self.num_procs());
        for i in 0..k {
            self.place(i, i);
        }
    }

    fn clear(&mut self) {
        self.proc_of_task.iter_mut().for_each(|p| *p = None);
        self.task_at_proc.iter_mut().for_each(|t| *t = None);
    }

    fn place(&mut self, task: usize, proc: usize) {
        debug_assert!(self.proc_of_task[task].is_none());
        debug_assert!(self.task_at_proc[proc].is_none());
        self.proc_of_task[task] = Some(proc);
        self.task_at_proc[proc] = Some(task);
    }

    fn unplace(&mut self, task: usize) {
        if let Some(p) = self.proc_of_task[task].take() {
            self.task_at_proc[p] = None;
        }
    }

    /// Classifies the paper's move "select task `t_i` and processor
    /// `p_j ≠ m_i`". Returns `None` when `proc` is the task's current
    /// processor (not a legal move).
    pub fn propose(&self, task: usize, proc: usize) -> Option<Move> {
        if self.proc_of_task[task] == Some(proc) {
            return None;
        }
        let from = self.proc_of_task[task];
        Some(match self.task_at_proc[proc] {
            None => Move::Transfer {
                task,
                to: proc,
                from,
            },
            Some(other) => Move::Swap {
                task,
                other,
                to: proc,
                from,
            },
        })
    }

    /// Applies a move (must have been proposed against the current
    /// state).
    pub fn apply(&mut self, mv: Move) {
        match mv {
            Move::Transfer { task, to, .. } => {
                self.unplace(task);
                self.place(task, to);
            }
            Move::Swap {
                task,
                other,
                to,
                from,
            } => {
                debug_assert_eq!(self.task_at_proc[to], Some(other));
                self.unplace(task);
                self.unplace(other);
                self.place(task, to);
                if let Some(f) = from {
                    self.place(other, f);
                }
                // from == None: `other` becomes unassigned ("moved to the
                // following annealing packet" if still unassigned at
                // convergence).
            }
        }
    }

    /// Undoes a move previously applied to the current state.
    pub fn undo(&mut self, mv: Move) {
        match mv {
            Move::Transfer { task, from, .. } => {
                self.unplace(task);
                if let Some(f) = from {
                    self.place(task, f);
                }
            }
            Move::Swap {
                task,
                other,
                to,
                from,
            } => {
                self.unplace(task);
                if from.is_some() {
                    self.unplace(other);
                }
                self.place(other, to);
                if let Some(f) = from {
                    self.place(task, f);
                }
            }
        }
    }

    /// Internal consistency check (both directions agree).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (t, p) in self.proc_of_task.iter().enumerate() {
            if let Some(p) = p {
                if self.task_at_proc[*p] != Some(t) {
                    return Err(format!("task {t} -> proc {p} not mirrored"));
                }
            }
        }
        for (p, t) in self.task_at_proc.iter().enumerate() {
            if let Some(t) = t {
                if self.proc_of_task[*t] != Some(p) {
                    return Err(format!("proc {p} -> task {t} not mirrored"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn saturation_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = PacketMapping::new(5, 3);
        m.saturate_random(&mut rng);
        assert_eq!(m.assigned_count(), 3);
        m.check_invariants().unwrap();

        let mut m2 = PacketMapping::new(2, 4);
        m2.saturate_random(&mut rng);
        assert_eq!(m2.assigned_count(), 2);
        m2.check_invariants().unwrap();

        let mut m3 = PacketMapping::new(3, 3);
        m3.saturate_in_order();
        assert_eq!(
            m3.assignments().collect::<Vec<_>>(),
            vec![(0, 0), (1, 1), (2, 2)]
        );
    }

    #[test]
    fn transfer_to_empty_proc() {
        let mut m = PacketMapping::new(2, 3);
        m.saturate_in_order(); // t0->p0, t1->p1; p2 empty
        let mv = m.propose(0, 2).unwrap();
        assert!(matches!(
            mv,
            Move::Transfer {
                task: 0,
                to: 2,
                from: Some(0)
            }
        ));
        m.apply(mv);
        assert_eq!(m.proc_of(0), Some(2));
        assert_eq!(m.task_at(0), None);
        m.check_invariants().unwrap();
        m.undo(mv);
        assert_eq!(m.proc_of(0), Some(0));
        m.check_invariants().unwrap();
    }

    #[test]
    fn swap_two_assigned() {
        let mut m = PacketMapping::new(2, 2);
        m.saturate_in_order();
        let mv = m.propose(0, 1).unwrap();
        assert!(matches!(
            mv,
            Move::Swap {
                task: 0,
                other: 1,
                to: 1,
                from: Some(0)
            }
        ));
        m.apply(mv);
        assert_eq!(m.proc_of(0), Some(1));
        assert_eq!(m.proc_of(1), Some(0));
        m.check_invariants().unwrap();
        m.undo(mv);
        assert_eq!(m.proc_of(0), Some(0));
        assert_eq!(m.proc_of(1), Some(1));
        m.check_invariants().unwrap();
    }

    #[test]
    fn unassigned_task_displaces() {
        // 3 tasks, 2 procs: t2 unassigned; moving t2 onto p0 bumps t0 out.
        let mut m = PacketMapping::new(3, 2);
        m.saturate_in_order(); // t0->p0, t1->p1
        let mv = m.propose(2, 0).unwrap();
        assert!(matches!(
            mv,
            Move::Swap {
                task: 2,
                other: 0,
                to: 0,
                from: None
            }
        ));
        m.apply(mv);
        assert_eq!(m.proc_of(2), Some(0));
        assert_eq!(m.proc_of(0), None);
        assert_eq!(m.assigned_count(), 2);
        m.check_invariants().unwrap();
        m.undo(mv);
        assert_eq!(m.proc_of(0), Some(0));
        assert_eq!(m.proc_of(2), None);
        m.check_invariants().unwrap();
    }

    #[test]
    fn unassigned_to_empty_proc_transfer(/* tasks < procs case */) {
        let mut m = PacketMapping::new(1, 3);
        m.saturate_in_order(); // t0 -> p0
                               // move to empty p2
        let mv = m.propose(0, 2).unwrap();
        m.apply(mv);
        assert_eq!(m.assigned_count(), 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn self_move_rejected() {
        let mut m = PacketMapping::new(2, 2);
        m.saturate_in_order();
        assert!(m.propose(0, 0).is_none());
        assert!(m.propose(0, 1).is_some());
    }

    #[test]
    fn moves_preserve_saturation_randomized() {
        let mut rng = StdRng::seed_from_u64(9);
        for (n, p) in [(5usize, 3usize), (3, 5), (4, 4), (1, 1), (6, 2)] {
            let mut m = PacketMapping::new(n, p);
            m.saturate_random(&mut rng);
            let expect = n.min(p);
            for _ in 0..200 {
                let task = rng.gen_range(0..n);
                let proc = rng.gen_range(0..p);
                if let Some(mv) = m.propose(task, proc) {
                    m.apply(mv);
                    assert_eq!(m.assigned_count(), expect);
                    m.check_invariants().unwrap();
                    if rng.gen_bool(0.5) {
                        m.undo(mv);
                        assert_eq!(m.assigned_count(), expect);
                        m.check_invariants().unwrap();
                    }
                }
            }
        }
    }
}
