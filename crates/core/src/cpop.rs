//! A CPOP-style critical-path-on-one-processor scheduler.
//!
//! Critical-Path-on-a-Processor (Topcuoglu et al.) prioritizes tasks by
//! `rank_t + rank_b` (top level plus bottom level, both including
//! communication) and pins every critical-path task to a single
//! dedicated processor, eliminating all communication along the longest
//! path; the remaining tasks are placed by earliest finish time. This
//! adaptation uses the eq. 4 communication model for both the ranks and
//! the EFT estimate, and picks the most *central* processor (minimum
//! total hop distance, ties to the lowest id) as the critical-path
//! host — on a hypercube every node qualifies, on a star the hub wins.
//!
//! Online semantics: a ready critical-path task waits until the host
//! processor is idle (it never spills elsewhere); other ready tasks are
//! dispatched to the remaining idle processors by EFT.

use anneal_graph::levels::{bottom_levels_with_comm, top_levels_with_comm};
use anneal_graph::{TaskId, Work};
use anneal_sim::{EpochContext, OnlineScheduler};
use anneal_topology::ProcId;

use crate::heft::estimated_finish;

#[derive(Debug, Clone)]
struct CpopState {
    priority: Vec<Work>,
    on_cp: Vec<bool>,
    cp_proc: ProcId,
}

/// Critical-path-on-one-processor scheduling with EFT placement for
/// off-path tasks.
#[derive(Debug, Default, Clone)]
pub struct CpopScheduler {
    state: Option<CpopState>,
}

impl CpopScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

// lint:allow(panic) reason="topologies have at least one processor"
fn init_state(ctx: &EpochContext<'_>) -> CpopState {
    let tl = top_levels_with_comm(ctx.graph);
    let bl = bottom_levels_with_comm(ctx.graph);
    let priority: Vec<Work> = tl.iter().zip(&bl).map(|(&a, &b)| a + b).collect();
    let cp = priority.iter().copied().max().unwrap_or(0);
    // Every task whose tl + bl sum attains the critical-path length lies
    // on some critical path; integer arithmetic makes equality exact.
    let on_cp: Vec<bool> = priority.iter().map(|&p| p == cp).collect();
    let cp_proc = ctx
        .topology
        .procs()
        .min_by_key(|&p| {
            let total: u64 = ctx
                .topology
                .procs()
                .map(|q| ctx.routes.distance(p, q) as u64)
                .sum();
            (total, p)
        })
        .expect("topology has at least one processor");
    CpopState {
        priority,
        on_cp,
        cp_proc,
    }
}

impl OnlineScheduler for CpopScheduler {
    // lint:allow(panic) reason="the loop breaks before `free` can be empty"
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        let state = self.state.get_or_insert_with(|| init_state(ctx));
        let mut ranked: Vec<TaskId> = ctx.ready.to_vec();
        ranked.sort_by_key(|&t| (std::cmp::Reverse(state.priority[t.index()]), t));
        let mut free: Vec<ProcId> = ctx.idle.to_vec();
        for &t in &ranked {
            if free.is_empty() {
                break;
            }
            if state.on_cp[t.index()] {
                // Critical-path tasks only ever run on the host.
                if let Some(i) = free.iter().position(|&q| q == state.cp_proc) {
                    out.push((t, free.swap_remove(i)));
                }
                continue;
            }
            let (bi, _) = free
                .iter()
                .enumerate()
                .map(|(i, &q)| (i, estimated_finish(ctx, t, q)))
                .min_by_key(|&(i, eft)| (eft, free[i]))
                .expect("free is non-empty");
            out.push((t, free.swap_remove(bi)));
        }
    }

    fn name(&self) -> &str {
        "cpop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, SimConfig};
    use anneal_topology::builders::{ring, star};
    use anneal_topology::CommParams;

    /// A chain with a heavy comm spine plus side tasks.
    fn spine() -> anneal_graph::TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev = b.add_task(us(10.0));
        for _ in 0..4 {
            let next = b.add_task(us(10.0));
            b.add_edge(prev, next, us(20.0)).unwrap();
            // a cheap side task hanging off each spine node
            let side = b.add_task(us(3.0));
            b.add_edge(prev, side, us(1.0)).unwrap();
            prev = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn critical_path_stays_on_one_processor() {
        let g = spine();
        let mut s = CpopScheduler::new();
        let r = simulate(
            &g,
            &ring(4),
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        r.audit(&g).unwrap();
        // The spine (ids 0,1,3,5,7) all share one processor: zero
        // communication along the critical path.
        let spine_ids = [0usize, 1, 3, 5, 7];
        let host = r.placement[0];
        for &i in &spine_ids {
            assert_eq!(r.placement[i], host, "spine task t{i} left the host");
        }
    }

    #[test]
    fn star_hub_hosts_the_critical_path() {
        let g = spine();
        let topo = star(5); // proc 0 is the hub (distance 1 to all)
        let mut s = CpopScheduler::new();
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        r.audit(&g).unwrap();
        assert_eq!(r.placement[0].index(), 0, "hub should host the path");
    }

    #[test]
    fn deterministic() {
        let g = spine();
        let run = || {
            let mut s = CpopScheduler::new();
            simulate(
                &g,
                &ring(4),
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap()
            .makespan
        };
        assert_eq!(run(), run());
    }
}
