//! Annealing-packet assembly (paper §4.1).
//!
//! "An annealing packet contains the ready tasks and the idle
//! processors. The ready tasks have no unfinished predecessors. At each
//! epoch a simulated annealing process maps the tasks of one packet onto
//! the processors. Unassigned tasks are moved to the following annealing
//! packet."
//!
//! Because every predecessor of a ready task has already finished, its
//! processor placement is known, so the eq. 4 communication cost of
//! putting task `t_i` on candidate processor `q` is a constant that can
//! be tabulated once per packet ([`AnnealingPacket::comm_cost`]). The SA
//! inner loop then evaluates moves in O(1).

use anneal_graph::{TaskId, Work};
use anneal_sim::EpochContext;
use anneal_topology::ProcId;

/// A scheduling stage: ready tasks × idle processors, with precomputed
/// levels and communication-cost tables.
#[derive(Debug, Clone)]
pub struct AnnealingPacket {
    /// The candidate tasks (`N` of them), sorted by id.
    pub tasks: Vec<TaskId>,
    /// The idle processors, sorted by id.
    pub procs: Vec<ProcId>,
    /// `levels[i]` is the paper's task level `n_i` of `tasks[i]` (ns).
    pub levels: Vec<Work>,
    /// `comm_cost[i][j]`: total eq. 4 cost of placing `tasks[i]` on
    /// `procs[j]`, summed over all its (finished, placed) predecessors.
    /// All zeros when communication is disabled.
    pub comm_cost: Vec<Vec<u64>>,
    /// Worst-case (over the idle processors) communication cost per
    /// task; used for the `ΔF_c` normalization range.
    pub worst_comm: Vec<u64>,
    /// Epoch time (ns), for traces.
    pub epoch_time: u64,
}

impl AnnealingPacket {
    /// Builds the packet for an epoch. `levels` is the full per-task
    /// bottom-level vector for the graph (cached by the scheduler).
    // lint:allow(panic) reason="ready tasks have placed predecessors"
    pub fn from_epoch(ctx: &EpochContext<'_>, levels: &[Work]) -> Self {
        let tasks: Vec<TaskId> = ctx.ready.to_vec();
        let procs: Vec<ProcId> = ctx.idle.to_vec();
        let lv: Vec<Work> = tasks.iter().map(|t| levels[t.index()]).collect();

        let mut comm_cost = vec![vec![0u64; procs.len()]; tasks.len()];
        let mut worst_comm = vec![0u64; tasks.len()];
        if ctx.comm_enabled {
            let mut preds: Vec<(ProcId, Work)> = Vec::new();
            for (i, &t) in tasks.iter().enumerate() {
                // Predecessor placements are all known: ready ⇒ finished.
                preds.clear();
                preds.extend(ctx.graph.predecessors(t).iter().map(|e| {
                    let src = ctx.placement[e.target.index()]
                        .expect("predecessor of a ready task is placed");
                    (src, e.weight)
                }));
                for (j, &q) in procs.iter().enumerate() {
                    let mut c = 0u64;
                    for &(src, w) in &preds {
                        let d = ctx.routes.distance(src, q);
                        c += ctx.params.eq4_cost(w, d, src == q);
                    }
                    comm_cost[i][j] = c;
                }
                worst_comm[i] = comm_cost[i].iter().copied().max().unwrap_or(0);
            }
        }
        AnnealingPacket {
            tasks,
            procs,
            levels: lv,
            comm_cost,
            worst_comm,
            epoch_time: ctx.time,
        }
    }

    /// Number of candidate tasks `N`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of idle processors `N_idle`.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Number of tasks that will actually be selected:
    /// `min(N, N_idle)` (the mapping always saturates).
    pub fn num_selected(&self) -> usize {
        self.tasks.len().min(self.procs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::levels::bottom_levels;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, OnlineScheduler, SimConfig};
    use anneal_topology::builders::linear;
    use anneal_topology::CommParams;

    /// Captures the packet built at the *second* epoch of a tiny run, so
    /// predecessors have real placements.
    struct Capture {
        levels: Vec<Work>,
        captured: Option<AnnealingPacket>,
    }
    impl OnlineScheduler for Capture {
        fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
            if ctx.time > 0 && self.captured.is_none() {
                self.captured = Some(AnnealingPacket::from_epoch(ctx, &self.levels));
            }
            for (&t, &p) in ctx.ready.iter().zip(ctx.idle.iter()) {
                out.push((t, p));
            }
        }
    }

    #[test]
    fn packet_tabulates_eq4_costs() {
        // a -> b with weight 4us; a runs on P0 (greedy assigns t0->P0).
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(10_000);
        let b = bld.add_task(20_000);
        bld.add_edge(a, b, 4_000).unwrap();
        let g = bld.build().unwrap();
        let topo = linear(3);
        let params = CommParams::paper();
        let mut s = Capture {
            levels: bottom_levels(&g),
            captured: None,
        };
        simulate(&g, &topo, &params, &mut s, &SimConfig::default()).unwrap();
        let pk = s.captured.expect("second epoch seen");
        assert_eq!(pk.tasks, vec![b]);
        assert_eq!(pk.procs.len(), 3);
        // comm cost of b on P0 (same proc as a) = 0;
        // on P1 (d=1) = 4000*1 + sigma = 11_000;
        // on P2 (d=2) = 8000 + tau + sigma = 24_000.
        assert_eq!(pk.comm_cost[0], vec![0, 11_000, 24_000]);
        assert_eq!(pk.worst_comm[0], 24_000);
        assert_eq!(pk.levels, vec![20_000]);
        assert_eq!(pk.num_selected(), 1);
        let _ = a;
    }

    #[test]
    fn no_comm_mode_zeroes_table() {
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(10_000);
        let b = bld.add_task(20_000);
        bld.add_edge(a, b, 4_000).unwrap();
        let g = bld.build().unwrap();
        let topo = linear(2);
        let mut s = Capture {
            levels: bottom_levels(&g),
            captured: None,
        };
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        simulate(&g, &topo, &CommParams::zero(), &mut s, &cfg).unwrap();
        let pk = s.captured.unwrap();
        assert!(pk.comm_cost.iter().all(|row| row.iter().all(|&c| c == 0)));
    }
}
