//! Counter-based RNG streams for the turbo SA lane.
//!
//! The sequential generators ([`rand::rngs::StdRng`], xoshiro256++)
//! carry their whole state from draw to draw: draw `k+1` cannot start
//! before draw `k` retired, so the annealing inner loop pays the full
//! latency of the state transition on every proposal. A **counter-based
//! generator** (Salmon et al., "Parallel random numbers: as easy as
//! 1, 2, 3", SC'11 — the Philox/Threefry idea) removes that dependency:
//! the `k`-th draw of a stream is a *pure function* of
//! `(seed, packet, k)`, so any block of draws can be computed
//! independently, in any order, batched, or vectorized.
//!
//! This module implements the SplitMix64 flavor of that idea — the same
//! finalizer the vendored shim's [`rand::SeedableRng::seed_from_u64`]
//! already uses for seed expansion:
//!
//! * [`stream_draw`]`(seed, packet, k)` — the pure per-draw function:
//!   a Weyl sequence `base(seed, packet) + k·γ` pushed through the
//!   SplitMix64 finalizer. Identical on every platform (pure integer
//!   arithmetic, no floats, no endianness).
//! * [`CounterRng`] — the incremental form the turbo lane runs: it
//!   keeps `base + k·γ` as a running Weyl state (one add per draw, no
//!   multiply) and finalizes it on demand, producing exactly the
//!   [`stream_draw`] sequence. It implements [`rand::RngCore`], so
//!   shuffles and any other shim machinery work unchanged on top of
//!   it.
//!
//! An earlier revision buffered draws 64 at a time (the classic
//! counter-RNG batching pitch). Measured on baseline x86-64 that was
//! a *loss*: the refill loop cannot vectorize (no packed 64-bit
//! multiply below AVX-512), so batching added a buffer round-trip and
//! a per-draw bounds branch on top of the same scalar finalizer —
//! ~2.4 ns/draw against ~1.2 ns/draw for the incremental form, with
//! the sequential xoshiro shim at ~1.1. The incremental form keeps
//! the property that actually matters for speed — no loop-carried
//! *multiply* and a one-instruction state transition — and the
//! counter semantics that matter for correctness.
//!
//! **Stream independence**: two packets of the same seed (or the same
//! packet of two seeds) get bases that differ by the full avalanche of
//! the SplitMix64 finalizer, not by a small offset — so distinct
//! `(seed, packet)` streams are for all practical purposes disjoint
//! (an overlap would require two bases to land within `k·γ` of each
//! other in a 2⁶⁴ space; for the ≤2²⁰ draws a packet consumes the
//! probability is ≈2⁻⁴³ per packet pair).
//!
//! The turbo lane's contract is **statistical, not bitwise** (see
//! `docs/ARCHITECTURE.md`, "SA lanes"): nothing here reproduces the
//! sequential `StdRng` stream, and nothing downstream may assume it
//! does. `sa.lane.rng_draws` counts the draws consumed through
//! `anneal-obs`.

use rand::RngCore;

/// The Weyl-sequence increment (the golden-ratio constant SplitMix64
/// itself advances by; also what `seed_from_u64` uses).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64` (same
/// constants as [`rand::SeedableRng::seed_from_u64`]).
#[inline]
fn finalize(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The base counter of stream `(seed, packet)`: both inputs are pushed
/// through the finalizer separately (with distinct offsets) so that
/// neighboring seeds or packets land at unrelated points of the Weyl
/// orbit rather than a small constant apart.
#[inline]
pub fn stream_base(seed: u64, packet: u64) -> u64 {
    finalize(seed.wrapping_add(GAMMA))
        ^ finalize(packet.wrapping_mul(GAMMA) ^ 0x6A09_E667_F3BC_C909)
}

/// Draw `k` of stream `(seed, packet)` — the pure counter-based form.
/// Same inputs give the same output on every platform, in any order,
/// with no state: `stream_draw(s, p, k)` never depends on
/// `stream_draw(s, p, k-1)`.
#[inline]
pub fn stream_draw(seed: u64, packet: u64, k: u64) -> u64 {
    finalize(stream_base(seed, packet).wrapping_add(k.wrapping_mul(GAMMA)))
}

/// An incremental counter-based generator over one `(seed, packet)`
/// stream.
///
/// Equivalent to calling [`stream_draw`] with `k = 0, 1, 2, …` — the
/// Weyl state `base + k·γ` is kept incrementally (one `wrapping_add`
/// per draw, no multiply, no memory), so the only loop-carried
/// dependency is a single-cycle add; everything else is a pure
/// function of the state and pipelines freely ahead of dependent
/// work.
#[derive(Debug, Clone)]
pub struct CounterRng {
    /// Weyl state of the *next* draw: `base + k·γ`.
    x: u64,
    draws: u64,
}

impl CounterRng {
    /// Generator for the `(seed, packet)` stream, positioned at draw 0.
    pub fn new(seed: u64, packet: u64) -> Self {
        CounterRng {
            x: stream_base(seed, packet),
            draws: 0,
        }
    }

    /// Draws consumed so far (flushed to `anneal-obs` as
    /// `sa.lane.rng_draws`).
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let v = finalize(self.x);
        self.x = self.x.wrapping_add(GAMMA);
        self.draws += 1;
        v
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_stream_equals_the_pure_function() {
        let mut rng = CounterRng::new(42, 7);
        for k in 0..200u64 {
            assert_eq!(rng.next_u64(), stream_draw(42, 7, k), "draw {k}");
        }
        assert_eq!(rng.draws(), 200);
    }

    #[test]
    fn known_answer_pins_the_stream_across_platforms() {
        // Frozen values: any change to the mixing constants or the base
        // derivation is a silent reseed of every turbo campaign, so the
        // first draws of a reference stream are pinned exactly.
        assert_eq!(stream_draw(0, 0, 0), 0x5eda_5b6b_1212_23a4);
        assert_eq!(stream_draw(42, 0, 0), 0x83bd_4feb_8b73_b901);
        assert_eq!(stream_draw(42, 1, 0), 0x0638_41bb_4046_fa17);
        assert_eq!(stream_draw(42, 1, 1), 0x1b53_7c92_718c_6f24);
    }

    #[test]
    fn fill_bytes_and_next_u32_derive_from_the_same_stream() {
        let mut a = CounterRng::new(5, 3);
        let mut b = CounterRng::new(5, 3);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w1);
        assert_eq!(&buf[8..], &w2[..4]);
    }
}
