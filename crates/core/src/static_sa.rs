//! Whole-graph ("static") simulated annealing — the §3 alternative.
//!
//! The mapping and balancing problems the paper builds on (Bollinger &
//! Midkiff; Hwang & Xu) anneal a *complete* task→processor mapping at
//! once. The paper replaces that with staged annealing because directed
//! graphs change their communication pattern over time. This module
//! implements the whole-graph approach as a comparison point: a full
//! mapping is annealed with the *simulated makespan itself* as the cost
//! function.
//!
//! Candidate moves are priced through the shared
//! [`Evaluator`](crate::eval::Evaluator) layer ([`crate::eval`]). The
//! default [`EvaluatorKind::Incremental`]
//! evaluator replays only the suffix of the schedule a move can affect,
//! which removes the "full simulation per move" cost that historically
//! made the static annealer the slowest scheduler in the workspace —
//! while returning makespans bit-identical to the full replay
//! (`EvaluatorKind::Full`), so results are independent of the choice.
//! The trade-off the paper's staged formulation highlights still
//! stands: even the incremental whole-graph delta is far more expensive
//! than the packet annealer's O(1) eq. 2–3 delta.

use anneal_graph::{TaskGraph, TaskId};
use anneal_sim::{SimConfig, SimError, SimResult};
use anneal_topology::{CommParams, ProcId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::boltzmann::{accept, AcceptanceRule};
use crate::cooling::CoolingSchedule;
use crate::eval::{level_dispatch_order, replay_mapping, EvaluatorKind};
use crate::lane::{accept_table, LaneCounters, SaLane};

/// Configuration of the whole-graph annealer.
#[derive(Debug, Clone)]
pub struct StaticSaConfig {
    /// Temperature steps.
    pub max_iters: u64,
    /// Moves per temperature step (0 = `max(8, num_tasks / 4)`).
    pub moves_per_temp: usize,
    /// Stop after this many cost-constant temperature steps.
    pub stable_iters: u64,
    /// Cooling schedule. Costs are makespans normalized by `T_1`, so
    /// order-0.1 temperatures are "hot".
    pub cooling: CoolingSchedule,
    /// Acceptance rule.
    pub acceptance: AcceptanceRule,
    /// RNG seed.
    pub seed: u64,
    /// How candidate mappings are priced. Both kinds return identical
    /// makespans (enforced by the equivalence suite); `Incremental` is
    /// several times faster per move.
    pub evaluator: EvaluatorKind,
    /// Which acceptance implementation decides the moves. The default
    /// [`SaLane::DeltaTable`] is bit-identical to [`SaLane::Exact`]
    /// (same decisions, same RNG stream).
    pub lane: SaLane,
}

impl Default for StaticSaConfig {
    fn default() -> Self {
        StaticSaConfig {
            max_iters: 240,
            moves_per_temp: 0,
            stable_iters: 12,
            cooling: CoolingSchedule::Geometric {
                t0: 0.05,
                alpha: 0.93,
            },
            acceptance: AcceptanceRule::HeatBath,
            seed: 42,
            evaluator: EvaluatorKind::Incremental,
            lane: SaLane::default(),
        }
    }
}

impl StaticSaConfig {
    /// The defaults used before incremental evaluation made moves
    /// cheap: half the temperature budget (`max_iters: 120`,
    /// `stable_iters: 8`). Kept for the regression test pinning that
    /// the bumped defaults never lose to them, and for callers that
    /// want the historical budget.
    pub fn pre_incremental() -> Self {
        StaticSaConfig {
            max_iters: 120,
            stable_iters: 8,
            ..StaticSaConfig::default()
        }
    }
}

/// Result of a whole-graph annealing run.
#[derive(Debug, Clone)]
pub struct StaticSaOutcome {
    /// The best mapping's simulation result.
    pub result: SimResult,
    /// The best mapping (task index → processor).
    pub mapping: Vec<ProcId>,
    /// Number of candidate evaluations performed (initial mapping plus
    /// one per proposed move).
    pub evaluations: u64,
    /// Temperature steps executed.
    pub iterations: u64,
    /// Moves proposed (Boltzmann acceptance tests run).
    pub proposed: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// Fast-lane acceptance counters (all zero on [`SaLane::Exact`]).
    pub lane_counters: LaneCounters,
}

impl StaticSaOutcome {
    /// Fraction of proposed moves accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// Accumulates this run into `r` (`static_sa.*` counters, plus the
    /// simulation counters of the winning replay via
    /// [`RunObs::record_into`](anneal_sim::RunObs::record_into)).
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("static_sa.evaluations", self.evaluations);
        r.add("static_sa.iterations", self.iterations);
        r.add("static_sa.proposed", self.proposed);
        r.add("static_sa.accepted", self.accepted);
        r.add("static_sa.lane.shortcut", self.lane_counters.shortcut);
        r.add("static_sa.lane.table", self.lane_counters.table);
        r.add("static_sa.lane.fallback", self.lane_counters.fallback);
        self.result.obs.record_into(r);
    }
}

/// Anneals a complete mapping of `g` onto `topo`, pricing every move
/// with the configured [`Evaluator`](crate::eval::Evaluator).
pub fn static_sa(
    g: &TaskGraph,
    topo: &Topology,
    params: &CommParams,
    sim_cfg: &SimConfig,
    cfg: &StaticSaConfig,
) -> Result<StaticSaOutcome, SimError> {
    let n = g.num_tasks();
    let np = topo.num_procs();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Dispatch ties broken by level, like the list baselines.
    let order = level_dispatch_order(g);
    let mut evaluator = cfg
        .evaluator
        .build(g, topo, params, sim_cfg, order.clone())?;

    // Initial mapping: round-robin in topological order (balanced and
    // feasible; annealing reshuffles from here).
    let mut mapping: Vec<ProcId> = vec![ProcId::from_index(0); n];
    for (i, &t) in g.topo_order().iter().enumerate() {
        mapping[t.index()] = ProcId::from_index(i % np);
    }
    let norm = g.total_work() as f64;
    let mut cur_cost = evaluator.reset(&mapping)? as f64 / norm;
    let mut best = (cur_cost, mapping.clone());

    let moves_per_temp = if cfg.moves_per_temp == 0 {
        (n / 4).max(8)
    } else {
        cfg.moves_per_temp
    };
    let table = accept_table(cfg.acceptance);
    let mut lane_counters = LaneCounters::default();

    enum Mv {
        Relocate(usize),
        Swap(usize),
    }

    let mut stable = 0u64;
    let mut k = 0u64;
    let mut proposed = 0u64;
    let mut accepted_moves = 0u64;
    while k < cfg.max_iters && stable < cfg.stable_iters {
        let temp = cfg.cooling.temperature(k);
        let mut changed = false;
        for _ in 0..moves_per_temp {
            proposed += 1;
            // Move: relocate one task, or swap two tasks' processors.
            let a = rng.gen_range(0..n);
            let (mv, cand_makespan);
            if np > 1 && rng.gen_bool(0.5) {
                let mut p = rng.gen_range(0..np);
                while ProcId::from_index(p) == mapping[a] {
                    p = rng.gen_range(0..np);
                }
                mv = Mv::Relocate(p);
                cand_makespan =
                    evaluator.eval_relocate(TaskId::from_index(a), ProcId::from_index(p))?;
            } else {
                let mut bidx = rng.gen_range(0..n);
                while bidx == a {
                    if n == 1 {
                        break;
                    }
                    bidx = rng.gen_range(0..n);
                }
                mv = Mv::Swap(bidx);
                cand_makespan =
                    evaluator.eval_swap(TaskId::from_index(a), TaskId::from_index(bidx))?;
            }
            let cand_cost = cand_makespan as f64 / norm;
            let delta = cand_cost - cur_cost;
            let acc = match cfg.lane {
                SaLane::Exact => accept(cfg.acceptance, delta, temp, &mut rng),
                SaLane::DeltaTable => {
                    table.accept_lossless(delta, temp, &mut rng, &mut lane_counters)
                }
                SaLane::Quantized => {
                    table.accept_quantized(delta, temp, &mut rng, &mut lane_counters)
                }
                // Acceptance-only turbo: the no-fallback midpoint rule
                // on the scheduler's sequential stream. Draw counts
                // diverge from the other lanes (certain decisions skip
                // the draw) — allowed, the lane has no stream contract.
                SaLane::Turbo => table.accept_turbo(delta, temp, &mut rng, &mut lane_counters),
            };
            if acc {
                accepted_moves += 1;
                evaluator.commit();
                match mv {
                    Mv::Relocate(p) => mapping[a] = ProcId::from_index(p),
                    Mv::Swap(bidx) => mapping.swap(a, bidx),
                }
                if delta.abs() > 1e-15 {
                    changed = true;
                }
                cur_cost = cand_cost;
                if cur_cost < best.0 {
                    best = (cur_cost, mapping.clone());
                }
            }
        }
        if changed {
            stable = 0;
        } else {
            stable += 1;
        }
        k += 1;
    }

    let evaluations = evaluator.evaluations();
    let result = replay_mapping(g, topo, params, sim_cfg, best.1.clone(), Some(order))?;
    Ok(StaticSaOutcome {
        result,
        mapping: best.1,
        evaluations,
        iterations: k,
        proposed,
        accepted: accepted_moves,
        lane_counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, FixedMapping};
    use anneal_topology::builders::{bus, hypercube};

    fn small_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(us(5.0));
        let mid: Vec<_> = (0..6).map(|_| b.add_task(us(20.0))).collect();
        let sink = b.add_task(us(5.0));
        for &m in &mid {
            b.add_edge(root, m, us(4.0)).unwrap();
            b.add_edge(m, sink, us(4.0)).unwrap();
        }
        b.build().unwrap()
    }

    fn quick_cfg(seed: u64) -> StaticSaConfig {
        StaticSaConfig {
            max_iters: 30,
            moves_per_temp: 8,
            seed,
            ..StaticSaConfig::default()
        }
    }

    #[test]
    fn improves_over_initial_round_robin() {
        let g = small_graph();
        let topo = bus(4);
        let out = static_sa(
            &g,
            &topo,
            &CommParams::paper(),
            &SimConfig::default(),
            &quick_cfg(1),
        )
        .unwrap();
        out.result.audit(&g).unwrap();
        assert!(out.evaluations > 1);
        // the annealed mapping is at least as good as pure round-robin
        let mut rr = FixedMapping::new(
            (0..g.num_tasks())
                .map(|i| ProcId::from_index(i % 4))
                .collect(),
        );
        let base = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut rr,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(out.result.makespan <= base.makespan);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = small_graph();
        let topo = hypercube(2);
        let run = |seed| {
            static_sa(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &quick_cfg(seed),
            )
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.proposed, b.proposed);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn counters_are_consistent_and_recordable() {
        let g = small_graph();
        let topo = hypercube(2);
        let out = static_sa(
            &g,
            &topo,
            &CommParams::paper(),
            &SimConfig::default(),
            &quick_cfg(3),
        )
        .unwrap();
        // one evaluation for the initial mapping, one per proposed move
        assert_eq!(out.evaluations, out.proposed + 1);
        assert!(out.accepted <= out.proposed);
        assert!((0.0..=1.0).contains(&out.acceptance_rate()));
        let mut reg = anneal_obs::MetricsRegistry::new();
        out.record_into(&mut reg);
        assert_eq!(reg.counter("static_sa.proposed"), out.proposed);
        assert_eq!(reg.counter("static_sa.accepted"), out.accepted);
        assert_eq!(reg.counter("sim.kernel.events"), out.result.obs.events);
    }

    #[test]
    fn full_and_incremental_evaluators_agree_exactly() {
        let g = small_graph();
        let topo = hypercube(2);
        let run = |kind| {
            static_sa(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &StaticSaConfig {
                    evaluator: kind,
                    ..quick_cfg(7)
                },
            )
            .unwrap()
        };
        let full = run(EvaluatorKind::Full);
        let incr = run(EvaluatorKind::Incremental);
        assert_eq!(full.result.makespan, incr.result.makespan);
        assert_eq!(full.mapping, incr.mapping);
        assert_eq!(full.evaluations, incr.evaluations);
        assert_eq!(full.iterations, incr.iterations);
        assert_eq!(full.result.finish, incr.result.finish);
    }

    #[test]
    fn single_processor_degenerates_to_serial() {
        let g = small_graph();
        let topo = bus(1);
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let out = static_sa(&g, &topo, &CommParams::zero(), &cfg, &quick_cfg(2)).unwrap();
        assert_eq!(out.result.makespan, g.total_work());
    }

    #[test]
    fn lanes_agree_exactly_on_the_lossless_configuration() {
        let g = small_graph();
        let topo = hypercube(2);
        let run = |lane| {
            static_sa(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &StaticSaConfig {
                    lane,
                    ..quick_cfg(13)
                },
            )
            .unwrap()
        };
        let exact = run(SaLane::Exact);
        let fast = run(SaLane::DeltaTable);
        assert_eq!(exact.result.makespan, fast.result.makespan);
        assert_eq!(exact.mapping, fast.mapping);
        assert_eq!(exact.proposed, fast.proposed);
        assert_eq!(exact.accepted, fast.accepted);
        assert_eq!(exact.iterations, fast.iterations);
        assert_eq!(exact.lane_counters.decisions(), 0);
        assert_eq!(fast.lane_counters.decisions(), fast.proposed);
        // The lossy lane still produces a valid schedule.
        let quant = run(SaLane::Quantized);
        quant.result.audit(&g).unwrap();
        assert_eq!(quant.lane_counters.decisions(), quant.proposed);
    }

    #[test]
    fn bumped_defaults_never_lose_to_pre_incremental_budget() {
        // The default budget doubled when moves became cheap. Because
        // only `max_iters`/`stable_iters` grew (the RNG stream per
        // temperature step is unchanged), the longer run explores a
        // superset of candidates and its best-so-far can only improve.
        let g = small_graph();
        let topo = hypercube(2);
        let defaults = StaticSaConfig::default();
        let old_defaults = StaticSaConfig::pre_incremental();
        assert!(defaults.max_iters > old_defaults.max_iters);
        assert!(defaults.stable_iters > old_defaults.stable_iters);
        for seed in [1, 9, 23] {
            let old = static_sa(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &StaticSaConfig {
                    seed,
                    ..StaticSaConfig::pre_incremental()
                },
            )
            .unwrap();
            let new = static_sa(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &StaticSaConfig {
                    seed,
                    ..StaticSaConfig::default()
                },
            )
            .unwrap();
            assert!(
                new.result.makespan <= old.result.makespan,
                "seed {seed}: {} > {}",
                new.result.makespan,
                old.result.makespan
            );
        }
    }
}
