//! Whole-graph ("static") simulated annealing — the §3 alternative.
//!
//! The mapping and balancing problems the paper builds on (Bollinger &
//! Midkiff; Hwang & Xu) anneal a *complete* task→processor mapping at
//! once. The paper replaces that with staged annealing because directed
//! graphs change their communication pattern over time. This module
//! implements the whole-graph approach as a comparison point: a full
//! mapping is annealed with the *simulated makespan itself* as the cost
//! function (each move is evaluated by replaying the mapping through the
//! discrete-event engine with a [`FixedMapping`] scheduler).
//!
//! That makes the static annealer far more expensive per move than the
//! paper's packet annealer (a full simulation instead of an O(1) delta),
//! which is precisely the trade-off the staged formulation avoids.

use anneal_graph::levels::bottom_levels;
use anneal_graph::TaskGraph;
use anneal_sim::{simulate, FixedMapping, SimConfig, SimError, SimResult};
use anneal_topology::{CommParams, ProcId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::boltzmann::{accept, AcceptanceRule};
use crate::cooling::CoolingSchedule;

/// Configuration of the whole-graph annealer.
#[derive(Debug, Clone)]
pub struct StaticSaConfig {
    /// Temperature steps.
    pub max_iters: u64,
    /// Moves per temperature step (0 = `max(8, num_tasks / 4)`).
    pub moves_per_temp: usize,
    /// Stop after this many cost-constant temperature steps.
    pub stable_iters: u64,
    /// Cooling schedule. Costs are makespans normalized by `T_1`, so
    /// order-0.1 temperatures are "hot".
    pub cooling: CoolingSchedule,
    /// Acceptance rule.
    pub acceptance: AcceptanceRule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StaticSaConfig {
    fn default() -> Self {
        StaticSaConfig {
            max_iters: 120,
            moves_per_temp: 0,
            stable_iters: 8,
            cooling: CoolingSchedule::Geometric {
                t0: 0.05,
                alpha: 0.93,
            },
            acceptance: AcceptanceRule::HeatBath,
            seed: 42,
        }
    }
}

/// Result of a whole-graph annealing run.
#[derive(Debug, Clone)]
pub struct StaticSaOutcome {
    /// The best mapping's simulation result.
    pub result: SimResult,
    /// The best mapping (task index → processor).
    pub mapping: Vec<ProcId>,
    /// Number of full simulations performed.
    pub evaluations: u64,
    /// Temperature steps executed.
    pub iterations: u64,
}

/// Anneals a complete mapping of `g` onto `topo`, evaluating every move
/// with a full discrete-event simulation.
pub fn static_sa(
    g: &TaskGraph,
    topo: &Topology,
    params: &CommParams,
    sim_cfg: &SimConfig,
    cfg: &StaticSaConfig,
) -> Result<StaticSaOutcome, SimError> {
    let n = g.num_tasks();
    let np = topo.num_procs();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let levels = bottom_levels(g);

    let evaluate = |mapping: &[ProcId]| -> Result<SimResult, SimError> {
        let mut sched = FixedMapping::new(mapping.to_vec())
            // dispatch ties broken by level, like the list baselines
            .with_order(levels.iter().map(|&l| u64::MAX - l).collect());
        simulate(g, topo, params, &mut sched, sim_cfg)
    };

    // Initial mapping: round-robin in topological order (balanced and
    // feasible; annealing reshuffles from here).
    let mut mapping: Vec<ProcId> = vec![ProcId::from_index(0); n];
    for (i, &t) in g.topo_order().iter().enumerate() {
        mapping[t.index()] = ProcId::from_index(i % np);
    }
    let mut evaluations = 0u64;
    let mut current = evaluate(&mapping)?;
    evaluations += 1;
    let norm = g.total_work() as f64;
    let mut cur_cost = current.makespan as f64 / norm;
    let mut best = (cur_cost, mapping.clone(), current.clone());

    let moves_per_temp = if cfg.moves_per_temp == 0 {
        (n / 4).max(8)
    } else {
        cfg.moves_per_temp
    };

    let mut stable = 0u64;
    let mut k = 0u64;
    while k < cfg.max_iters && stable < cfg.stable_iters {
        let temp = cfg.cooling.temperature(k);
        let mut changed = false;
        for _ in 0..moves_per_temp {
            // Move: relocate one task, or swap two tasks' processors.
            let a = rng.gen_range(0..n);
            let (undo_a, undo_b);
            if np > 1 && rng.gen_bool(0.5) {
                let mut p = rng.gen_range(0..np);
                while ProcId::from_index(p) == mapping[a] {
                    p = rng.gen_range(0..np);
                }
                undo_a = (a, mapping[a]);
                undo_b = None;
                mapping[a] = ProcId::from_index(p);
            } else {
                let mut bidx = rng.gen_range(0..n);
                while bidx == a {
                    if n == 1 {
                        break;
                    }
                    bidx = rng.gen_range(0..n);
                }
                undo_a = (a, mapping[a]);
                undo_b = Some((bidx, mapping[bidx]));
                mapping.swap(a, bidx);
            }
            let candidate = evaluate(&mapping)?;
            evaluations += 1;
            let cand_cost = candidate.makespan as f64 / norm;
            let delta = cand_cost - cur_cost;
            if accept(cfg.acceptance, delta, temp, &mut rng) {
                if delta.abs() > 1e-15 {
                    changed = true;
                }
                cur_cost = cand_cost;
                current = candidate;
                if cur_cost < best.0 {
                    best = (cur_cost, mapping.clone(), current.clone());
                }
            } else {
                // revert
                if let Some((b_idx, b_proc)) = undo_b {
                    mapping[b_idx] = b_proc;
                }
                mapping[undo_a.0] = undo_a.1;
            }
        }
        if changed {
            stable = 0;
        } else {
            stable += 1;
        }
        k += 1;
    }

    Ok(StaticSaOutcome {
        result: best.2,
        mapping: best.1,
        evaluations,
        iterations: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_topology::builders::{bus, hypercube};

    fn small_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(us(5.0));
        let mid: Vec<_> = (0..6).map(|_| b.add_task(us(20.0))).collect();
        let sink = b.add_task(us(5.0));
        for &m in &mid {
            b.add_edge(root, m, us(4.0)).unwrap();
            b.add_edge(m, sink, us(4.0)).unwrap();
        }
        b.build().unwrap()
    }

    fn quick_cfg(seed: u64) -> StaticSaConfig {
        StaticSaConfig {
            max_iters: 30,
            moves_per_temp: 8,
            seed,
            ..StaticSaConfig::default()
        }
    }

    #[test]
    fn improves_over_initial_round_robin() {
        let g = small_graph();
        let topo = bus(4);
        let out = static_sa(
            &g,
            &topo,
            &CommParams::paper(),
            &SimConfig::default(),
            &quick_cfg(1),
        )
        .unwrap();
        out.result.audit(&g).unwrap();
        assert!(out.evaluations > 1);
        // the annealed mapping is at least as good as pure round-robin
        let mut rr = FixedMapping::new(
            (0..g.num_tasks())
                .map(|i| ProcId::from_index(i % 4))
                .collect(),
        );
        let base = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut rr,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(out.result.makespan <= base.makespan);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = small_graph();
        let topo = hypercube(2);
        let run = |seed| {
            static_sa(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &quick_cfg(seed),
            )
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn single_processor_degenerates_to_serial() {
        let g = small_graph();
        let topo = bus(1);
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let out = static_sa(&g, &topo, &CommParams::zero(), &cfg, &quick_cfg(2)).unwrap();
        assert_eq!(out.result.makespan, g.total_work());
    }
}
