//! Multi-restart SA across threads.
//!
//! Simulated annealing is stochastic; independent restarts with
//! different seeds explore different basins, and the per-packet runs are
//! embarrassingly parallel across restarts. `best_of_restarts` runs one
//! full schedule-and-simulate per seed on its own thread (std scoped
//! threads; no shared mutable state) and keeps the best makespan —
//! deterministic given the seed list.

use anneal_graph::TaskGraph;
use anneal_sim::{simulate, SimConfig, SimError, SimResult};
use anneal_topology::{CommParams, Topology};

use crate::sa::{SaConfig, SaScheduler};

/// Outcome of a restart sweep.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// The best run.
    pub result: SimResult,
    /// The seed that produced it.
    pub seed: u64,
    /// Makespan of every seed, in input order.
    pub all_makespans: Vec<u64>,
}

/// Runs one full SA schedule per seed (in parallel) and returns the best
/// by makespan; ties break toward the earlier seed in `seeds`.
pub fn best_of_restarts(
    graph: &TaskGraph,
    topology: &Topology,
    params: &CommParams,
    base: &SaConfig,
    seeds: &[u64],
    sim_cfg: &SimConfig,
) -> Result<RestartOutcome, SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let results: Vec<Result<SimResult, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    let mut sched = SaScheduler::new(base.clone().with_seed(seed));
                    simulate(graph, topology, params, &mut sched, sim_cfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    let mut best: Option<(usize, SimResult)> = None;
    let mut all = Vec::with_capacity(seeds.len());
    for (i, r) in results.into_iter().enumerate() {
        let r = r?;
        all.push(r.makespan);
        let better = match &best {
            None => true,
            Some((_, b)) => r.makespan < b.makespan,
        };
        if better {
            best = Some((i, r));
        }
    }
    let (idx, result) = best.expect("at least one seed");
    Ok(RestartOutcome {
        result,
        seed: seeds[idx],
        all_makespans: all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::generate::{layered_random, LayeredConfig, Range};
    use anneal_graph::units::us;
    use anneal_topology::builders::hypercube;
    use rand::SeedableRng;

    fn sample_graph() -> TaskGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        layered_random(
            &LayeredConfig {
                layers: 4,
                width: 6,
                edge_prob: 0.3,
                load: Range::new(us(5.0), us(40.0)),
                comm: Range::new(us(1.0), us(8.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn best_of_restarts_picks_minimum() {
        let g = sample_graph();
        let topo = hypercube(3);
        let out = best_of_restarts(
            &g,
            &topo,
            &CommParams::paper(),
            &SaConfig::default(),
            &[1, 2, 3, 4],
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(out.all_makespans.len(), 4);
        let min = *out.all_makespans.iter().min().unwrap();
        assert_eq!(out.result.makespan, min);
        assert!(out.all_makespans.contains(&out.result.makespan));
        out.result.audit(&g).unwrap();
    }

    #[test]
    fn restart_sweep_is_deterministic() {
        let g = sample_graph();
        let topo = hypercube(3);
        let run = || {
            best_of_restarts(
                &g,
                &topo,
                &CommParams::paper(),
                &SaConfig::default(),
                &[7, 8],
                &SimConfig::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.all_makespans, b.all_makespans);
    }

    #[test]
    fn more_restarts_never_hurt() {
        let g = sample_graph();
        let topo = hypercube(3);
        let few = best_of_restarts(
            &g,
            &topo,
            &CommParams::paper(),
            &SaConfig::default(),
            &[1],
            &SimConfig::default(),
        )
        .unwrap();
        let many = best_of_restarts(
            &g,
            &topo,
            &CommParams::paper(),
            &SaConfig::default(),
            &[1, 2, 3, 4, 5, 6],
            &SimConfig::default(),
        )
        .unwrap();
        assert!(many.result.makespan <= few.result.makespan);
    }
}
