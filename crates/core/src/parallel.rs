//! Multi-restart SA across threads, plus the shared chunked job runner.
//!
//! Simulated annealing is stochastic; independent restarts with
//! different seeds explore different basins, and the per-packet runs are
//! embarrassingly parallel across restarts. `best_of_restarts` runs one
//! full schedule-and-simulate per seed (std scoped threads; no shared
//! mutable state) and keeps the best makespan — deterministic given the
//! seed list.
//!
//! [`run_chunked`] is the underlying fan-out primitive: it executes `n`
//! independent jobs on at most `max_threads` worker threads (strided
//! assignment, results gathered by job index) so callers never spawn one
//! thread per job. The arena tournament runner (`anneal-arena`) reuses
//! it for its portfolio × instance matrix.

use anneal_graph::TaskGraph;
use anneal_sim::{simulate, SimConfig, SimError, SimResult};
use anneal_topology::{CommParams, Topology};

use crate::lane::SaScratch;
use crate::sa::{SaConfig, SaScheduler};
use crate::static_sa::{static_sa, StaticSaConfig, StaticSaOutcome};

/// The default thread cap: the machine's available parallelism (1 when
/// it cannot be determined).
pub fn default_max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `jobs` independent jobs across at most `max_threads` scoped
/// worker threads (`0` means [`default_max_threads`]) and returns the
/// results in job order. Worker `w` handles jobs `w, w + T, w + 2T, …`
/// — the assignment is deterministic, so any per-job seeding stays
/// reproducible regardless of the thread cap.
pub fn run_chunked<T, F>(jobs: usize, max_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_scratch(jobs, max_threads, || (), |(), i| f(i))
}

/// [`run_chunked`] with **per-worker scratch state**: each worker calls
/// `init` once on its own thread and threads the resulting value
/// through every job it handles. This is how evaluation scratch
/// (`anneal_sim::SimScratch`) is reused *across* cells of a tournament
/// or campaign shard instead of being rebuilt per cell — the worker's
/// scratch stays warm from job to job. Results must not depend on the
/// scratch state (scratch is an optimization, never an input), so the
/// output remains reproducible under any thread cap.
pub fn run_chunked_scratch<T, S, I, F>(jobs: usize, max_threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_chunked_impl(jobs, max_threads, init, drop, f)
}

/// The one fan-out loop behind [`run_chunked`], [`run_chunked_scratch`]
/// and [`run_chunked_pooled`]: strided job assignment, per-worker
/// scratch obtained from `init` and handed to `done` when the worker
/// finishes (both run on the worker's own thread).
// lint:allow(panic) reason="worker panics are propagated; the strided split covers every job index once"
fn run_chunked_impl<T, S, I, D, F>(
    jobs: usize,
    max_threads: usize,
    init: I,
    done: D,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    D: Fn(S) + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = if max_threads == 0 {
        default_max_threads()
    } else {
        max_threads
    }
    .min(jobs);
    let f = &f;
    let init = &init;
    let done = &done;
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(jobs).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut scratch = init();
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < jobs {
                        out.push((i, f(&mut scratch, i)));
                        i += threads;
                    }
                    done(scratch);
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("worker thread panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job index is covered by exactly one worker"))
        .collect()
}

/// A shared pool of scratch values for *repeated* fan-outs.
///
/// [`run_chunked_scratch`] warms one scratch per worker, but the
/// workers die with the call — a caller that fans out thousands of
/// times (the adversarial search prices every candidate instance
/// against the whole portfolio) would re-warm from scratch on every
/// fan-out. A `ScratchPool` keeps the warmed values alive between
/// calls: workers take one at start ([`ScratchPool::take`] falls back
/// to `Default` when the pool is dry) and return it when done, so
/// across an entire search only about `max_threads` scratches are ever
/// created.
#[derive(Debug)]
pub struct ScratchPool<S> {
    pool: std::sync::Mutex<PoolInner<S>>,
}

#[derive(Debug)]
struct PoolInner<S> {
    items: Vec<S>,
    stats: PoolStats,
}

/// Hit/miss statistics of a [`ScratchPool`].
///
/// A *hit* reuses a warmed scratch; a *miss* builds a fresh default
/// one. The split between them depends on how many workers raced for
/// the pool, so these are [`Scheduling`](anneal_obs::MetricClass::Scheduling)-class
/// metrics (`sched.pool.*`): excluded from cross-`--threads`
/// invariance checks. (Route-table rebuilds are counted separately,
/// inside each scratch — see `anneal_sim::RouteCacheStats` — because a
/// pool miss costs one warm-up while a route rebuild recurs per
/// topology switch.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from the pool (warm scratch reused).
    pub hits: u64,
    /// Takes that fell back to `Default` (cold scratch built).
    pub misses: u64,
}

impl PoolStats {
    /// Accumulates these statistics into `r` (`sched.pool.*` counters).
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sched.pool.hits", self.hits);
        r.add("sched.pool.misses", self.misses);
    }
}

impl<S> Default for ScratchPool<S> {
    fn default() -> Self {
        ScratchPool {
            pool: std::sync::Mutex::new(PoolInner {
                items: Vec::new(),
                stats: PoolStats::default(),
            }),
        }
    }
}

impl<S: Default> ScratchPool<S> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a pooled (warm) scratch, or a fresh default one.
    // lint:allow(panic) reason="pool users do not panic while holding the lock"
    pub fn take(&self) -> S {
        let mut inner = self.pool.lock().expect("scratch pool poisoned");
        match inner.items.pop() {
            Some(s) => {
                inner.stats.hits += 1;
                s
            }
            None => {
                inner.stats.misses += 1;
                drop(inner);
                S::default()
            }
        }
    }

    /// Returns a scratch to the pool for the next fan-out.
    // lint:allow(panic) reason="pool users do not panic while holding the lock"
    pub fn put(&self, s: S) {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .items
            .push(s);
    }

    /// Number of pooled scratches (diagnostics).
    // lint:allow(panic) reason="pool users do not panic while holding the lock"
    pub fn len(&self) -> usize {
        self.pool.lock().expect("scratch pool poisoned").items.len()
    }

    /// `true` when no scratch is pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss statistics accumulated since construction.
    // lint:allow(panic) reason="pool users do not panic while holding the lock"
    pub fn stats(&self) -> PoolStats {
        self.pool.lock().expect("scratch pool poisoned").stats
    }
}

/// [`run_chunked_scratch`] drawing worker scratches from (and returning
/// them to) a [`ScratchPool`], for callers that fan out repeatedly.
pub fn run_chunked_pooled<T, S, F>(
    jobs: usize,
    max_threads: usize,
    pool: &ScratchPool<S>,
    f: F,
) -> Vec<T>
where
    T: Send,
    S: Default + Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_chunked_impl(jobs, max_threads, || pool.take(), |s| pool.put(s), f)
}

/// Outcome of a restart sweep.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// The best run.
    pub result: SimResult,
    /// The seed that produced it.
    pub seed: u64,
    /// Makespan of every seed, in input order.
    pub all_makespans: Vec<u64>,
}

impl RestartOutcome {
    /// Accumulates the sweep into `r`: an `sa.restarts` counter plus
    /// the winning run's kernel counters. Restart *outcomes* are
    /// thread-count-independent (each seed's run is sequential), so
    /// everything recorded here is deterministic-class.
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sa.restarts", self.all_makespans.len() as u64);
        self.result.obs.record_into(r);
    }
}

/// Runs one full SA schedule per seed (in parallel, capped at the
/// machine's available parallelism) and returns the best by makespan;
/// ties break toward the earlier seed in `seeds`.
pub fn best_of_restarts(
    graph: &TaskGraph,
    topology: &Topology,
    params: &CommParams,
    base: &SaConfig,
    seeds: &[u64],
    sim_cfg: &SimConfig,
) -> Result<RestartOutcome, SimError> {
    best_of_restarts_capped(graph, topology, params, base, seeds, sim_cfg, 0)
}

/// [`best_of_restarts`] with an explicit thread cap (`0` =
/// [`default_max_threads`]). The outcome is identical for every cap —
/// only the degree of concurrency changes.
#[allow(clippy::too_many_arguments)]
// lint:allow(panic) reason="num_seeds >= 1 is asserted above, so one outcome exists"
pub fn best_of_restarts_capped(
    graph: &TaskGraph,
    topology: &Topology,
    params: &CommParams,
    base: &SaConfig,
    seeds: &[u64],
    sim_cfg: &SimConfig,
    max_threads: usize,
) -> Result<RestartOutcome, SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    // Each worker keeps one fast-lane scratch warm across all the
    // restarts it handles: the per-packet tables are rebuilt in place
    // (no allocation at the steady-state high-water mark). Scratch is
    // never an input — outcomes are identical for any thread cap.
    let pool: ScratchPool<SaScratch> = ScratchPool::new();
    let results: Vec<Result<SimResult, SimError>> =
        run_chunked_pooled(seeds.len(), max_threads, &pool, |scratch, i| {
            let mut sched = SaScheduler::new(base.clone().with_seed(seeds[i]));
            sched.set_scratch(std::mem::take(scratch));
            let r = simulate(graph, topology, params, &mut sched, sim_cfg);
            *scratch = sched.take_scratch();
            r
        });

    let mut best: Option<(usize, SimResult)> = None;
    let mut all = Vec::with_capacity(seeds.len());
    for (i, r) in results.into_iter().enumerate() {
        let r = r?;
        all.push(r.makespan);
        let better = match &best {
            None => true,
            Some((_, b)) => r.makespan < b.makespan,
        };
        if better {
            best = Some((i, r));
        }
    }
    let (idx, result) = best.expect("at least one seed");
    Ok(RestartOutcome {
        result,
        seed: seeds[idx],
        all_makespans: all,
    })
}

/// Outcome of a whole-graph (static SA) restart sweep.
#[derive(Debug, Clone)]
pub struct StaticRestartOutcome {
    /// The best run's full outcome.
    pub outcome: StaticSaOutcome,
    /// The seed that produced it.
    pub seed: u64,
    /// Makespan of every seed, in input order.
    pub all_makespans: Vec<u64>,
}

/// Runs one whole-graph annealing per seed (in parallel, capped at
/// `max_threads`; `0` = [`default_max_threads`]) and returns the best
/// by makespan; ties break toward the earlier seed.
///
/// Every restart prices its moves through the shared
/// [`Evaluator`](crate::eval::Evaluator) selected by
/// `base.evaluator` — with the default incremental kernel, a restart
/// sweep that used to cost `seeds × moves` full simulations now costs
/// `seeds` full simulations plus cheap suffix replays.
#[allow(clippy::too_many_arguments)]
// lint:allow(panic) reason="num_seeds >= 1 is asserted above, so one outcome exists"
pub fn best_of_static_restarts(
    graph: &TaskGraph,
    topology: &Topology,
    params: &CommParams,
    sim_cfg: &SimConfig,
    base: &StaticSaConfig,
    seeds: &[u64],
    max_threads: usize,
) -> Result<StaticRestartOutcome, SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let results: Vec<Result<StaticSaOutcome, SimError>> =
        run_chunked(seeds.len(), max_threads, |i| {
            let cfg = StaticSaConfig {
                seed: seeds[i],
                ..base.clone()
            };
            static_sa(graph, topology, params, sim_cfg, &cfg)
        });

    let mut best: Option<(usize, StaticSaOutcome)> = None;
    let mut all = Vec::with_capacity(seeds.len());
    for (i, r) in results.into_iter().enumerate() {
        let r = r?;
        all.push(r.result.makespan);
        let better = match &best {
            None => true,
            Some((_, b)) => r.result.makespan < b.result.makespan,
        };
        if better {
            best = Some((i, r));
        }
    }
    let (idx, outcome) = best.expect("at least one seed");
    Ok(StaticRestartOutcome {
        outcome,
        seed: seeds[idx],
        all_makespans: all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::generate::{layered_random, LayeredConfig, Range};
    use anneal_graph::units::us;
    use anneal_topology::builders::hypercube;
    use rand::SeedableRng;

    fn sample_graph() -> TaskGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        layered_random(
            &LayeredConfig {
                layers: 4,
                width: 6,
                edge_prob: 0.3,
                load: Range::new(us(5.0), us(40.0)),
                comm: Range::new(us(1.0), us(8.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn best_of_restarts_picks_minimum() {
        let g = sample_graph();
        let topo = hypercube(3);
        let out = best_of_restarts(
            &g,
            &topo,
            &CommParams::paper(),
            &SaConfig::default(),
            &[1, 2, 3, 4],
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(out.all_makespans.len(), 4);
        let min = *out.all_makespans.iter().min().unwrap();
        assert_eq!(out.result.makespan, min);
        assert!(out.all_makespans.contains(&out.result.makespan));
        out.result.audit(&g).unwrap();
    }

    #[test]
    fn restart_sweep_is_deterministic() {
        let g = sample_graph();
        let topo = hypercube(3);
        let run = || {
            best_of_restarts(
                &g,
                &topo,
                &CommParams::paper(),
                &SaConfig::default(),
                &[7, 8],
                &SimConfig::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.all_makespans, b.all_makespans);
    }

    #[test]
    fn thread_cap_does_not_change_outcome() {
        let g = sample_graph();
        let topo = hypercube(3);
        let run = |cap: usize| {
            best_of_restarts_capped(
                &g,
                &topo,
                &CommParams::paper(),
                &SaConfig::default(),
                &[3, 4, 5, 6, 7],
                &SimConfig::default(),
                cap,
            )
            .unwrap()
        };
        let serial = run(1);
        let capped = run(2);
        let wide = run(0);
        assert_eq!(serial.all_makespans, capped.all_makespans);
        assert_eq!(serial.all_makespans, wide.all_makespans);
        assert_eq!(serial.seed, wide.seed);
    }

    #[test]
    fn run_chunked_orders_and_covers() {
        for cap in [0, 1, 2, 7, 64] {
            let out = run_chunked(13, cap, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>(), "cap {cap}");
        }
        assert!(run_chunked(0, 3, |i| i).is_empty());
        assert!(default_max_threads() >= 1);
    }

    #[test]
    fn run_chunked_scratch_reuses_per_worker_state() {
        // With one worker, the scratch threads through every job in
        // order; results stay in job order regardless of cap.
        let out = run_chunked_scratch(
            6,
            1,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        for cap in [0, 2, 5] {
            let out = run_chunked_scratch(9, cap, || (), |(), i| i * 3);
            assert_eq!(out, (0..9).map(|i| i * 3).collect::<Vec<_>>(), "cap {cap}");
        }
        assert!(run_chunked_scratch(0, 2, || (), |(), i| i).is_empty());
    }

    #[test]
    fn scratch_pool_recycles_across_fanouts() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        assert!(pool.is_empty());
        for round in 0..3 {
            let out = run_chunked_pooled(8, 2, &pool, |scratch, i| {
                scratch.push(i as u64);
                i * 2
            });
            assert_eq!(
                out,
                (0..8).map(|i| i * 2).collect::<Vec<_>>(),
                "round {round}"
            );
            // every worker returned its scratch (a fast worker's
            // scratch may have been re-taken by a slower one, so the
            // count is 1..=2, never 0 and never growing per round)
            let len = pool.len();
            assert!((1..=2).contains(&len), "round {round}: {len}");
        }
        // every job of every round landed in a scratch that is back in
        // the pool: the pooled scratches hold all 24 pushes.
        let mut total = 0;
        while !pool.is_empty() {
            total += pool.take().len();
        }
        assert_eq!(total, 24);
        // every take was counted: 3 fan-outs plus the drain above
        let stats = pool.stats();
        assert!(stats.hits >= 1, "at least one warm reuse across rounds");
        assert!(stats.misses >= 1, "the first take is always cold");
        let mut reg = anneal_obs::MetricsRegistry::new();
        stats.record_into(&mut reg);
        assert_eq!(reg.counter("sched.pool.hits"), stats.hits);
        assert_eq!(reg.counter("sched.pool.misses"), stats.misses);
        use anneal_obs::MetricClass;
        assert_eq!(
            anneal_obs::class_of("sched.pool.hits"),
            MetricClass::Scheduling
        );
    }

    #[test]
    fn static_restart_sweep_is_deterministic_and_picks_minimum() {
        let g = sample_graph();
        let topo = hypercube(2);
        let base = StaticSaConfig {
            max_iters: 20,
            moves_per_temp: 6,
            ..StaticSaConfig::default()
        };
        let run = |cap| {
            best_of_static_restarts(
                &g,
                &topo,
                &CommParams::paper(),
                &SimConfig::default(),
                &base,
                &[1, 2, 3],
                cap,
            )
            .unwrap()
        };
        let serial = run(1);
        let wide = run(0);
        assert_eq!(serial.all_makespans, wide.all_makespans);
        assert_eq!(serial.seed, wide.seed);
        let min = *serial.all_makespans.iter().min().unwrap();
        assert_eq!(serial.outcome.result.makespan, min);
        serial.outcome.result.audit(&g).unwrap();
    }

    #[test]
    fn more_restarts_never_hurt() {
        let g = sample_graph();
        let topo = hypercube(3);
        let few = best_of_restarts(
            &g,
            &topo,
            &CommParams::paper(),
            &SaConfig::default(),
            &[1],
            &SimConfig::default(),
        )
        .unwrap();
        let many = best_of_restarts(
            &g,
            &topo,
            &CommParams::paper(),
            &SaConfig::default(),
            &[1, 2, 3, 4, 5, 6],
            &SimConfig::default(),
        )
        .unwrap();
        assert!(many.result.makespan <= few.result.makespan);
    }
}
