//! Cooling schedules.
//!
//! The paper specifies only that the cooling function generates a
//! decreasing temperature sequence from ∞-like (random acceptance)
//! toward 0 (deterministic descent), and that "the cooling policy
//! influences the convergence speed and the quality of the obtained
//! solution". Geometric cooling is the default; the others exist for the
//! cooling-policy ablation.

/// A deterministic temperature sequence `Temp_k`, `k = 0, 1, …`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoolingSchedule {
    /// `T_k = t0 · α^k` (0 < α < 1). The workhorse.
    Geometric {
        /// Initial temperature.
        t0: f64,
        /// Decay per iteration.
        alpha: f64,
    },
    /// `T_k = max(0, t0 − k·step)`: linear descent reaching zero.
    Linear {
        /// Initial temperature.
        t0: f64,
        /// Decrement per iteration.
        step: f64,
    },
    /// `T_k = t0 / ln(k + e)`: the classical logarithmic schedule
    /// (asymptotically convergent, very slow).
    Logarithmic {
        /// Numerator constant.
        t0: f64,
    },
    /// Constant temperature (testing / infinite-temperature studies).
    Constant {
        /// The fixed temperature.
        temp: f64,
    },
}

impl CoolingSchedule {
    /// The paper-default schedule used by `SaConfig::default`:
    /// geometric from 1.0 with α = 0.95 (costs are normalized to
    /// order-1 by eq. 6, so `t0 = 1` starts near-random).
    pub fn default_geometric() -> Self {
        CoolingSchedule::Geometric {
            t0: 1.0,
            alpha: 0.95,
        }
    }

    /// Temperature at iteration `k`.
    pub fn temperature(&self, k: u64) -> f64 {
        match *self {
            CoolingSchedule::Geometric { t0, alpha } => {
                debug_assert!((0.0..1.0).contains(&alpha));
                t0 * alpha.powi(k.min(i32::MAX as u64) as i32)
            }
            CoolingSchedule::Linear { t0, step } => (t0 - step * k as f64).max(0.0),
            CoolingSchedule::Logarithmic { t0 } => t0 / (k as f64 + std::f64::consts::E).ln(),
            CoolingSchedule::Constant { temp } => temp,
        }
    }

    /// A human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoolingSchedule::Geometric { .. } => "geometric",
            CoolingSchedule::Linear { .. } => "linear",
            CoolingSchedule::Logarithmic { .. } => "logarithmic",
            CoolingSchedule::Constant { .. } => "constant",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_decays() {
        let c = CoolingSchedule::Geometric {
            t0: 2.0,
            alpha: 0.5,
        };
        assert_eq!(c.temperature(0), 2.0);
        assert_eq!(c.temperature(1), 1.0);
        assert_eq!(c.temperature(3), 0.25);
    }

    #[test]
    fn linear_hits_zero_and_stays() {
        let c = CoolingSchedule::Linear { t0: 1.0, step: 0.4 };
        assert_eq!(c.temperature(0), 1.0);
        assert!((c.temperature(2) - 0.2).abs() < 1e-12);
        assert_eq!(c.temperature(3), 0.0);
        assert_eq!(c.temperature(1000), 0.0);
    }

    #[test]
    fn logarithmic_decreases_slowly() {
        let c = CoolingSchedule::Logarithmic { t0: 1.0 };
        assert!((c.temperature(0) - 1.0).abs() < 1e-12); // ln(e) = 1
        assert!(c.temperature(10) > c.temperature(100));
        assert!(c.temperature(100) > 0.0);
    }

    #[test]
    fn constant_is_constant() {
        let c = CoolingSchedule::Constant { temp: 0.7 };
        assert_eq!(c.temperature(0), 0.7);
        assert_eq!(c.temperature(9999), 0.7);
    }

    #[test]
    fn all_schedules_monotone_nonincreasing() {
        for c in [
            CoolingSchedule::default_geometric(),
            CoolingSchedule::Linear {
                t0: 1.0,
                step: 0.01,
            },
            CoolingSchedule::Logarithmic { t0: 1.0 },
            CoolingSchedule::Constant { temp: 0.5 },
        ] {
            let mut last = f64::INFINITY;
            for k in 0..200 {
                let t = c.temperature(k);
                assert!(t <= last + 1e-15, "{c:?} increased at k={k}");
                assert!(t >= 0.0);
                last = t;
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(CoolingSchedule::default_geometric().name(), "geometric");
        assert_eq!(CoolingSchedule::Constant { temp: 1.0 }.name(), "constant");
    }
}
