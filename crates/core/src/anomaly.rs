//! Graham's multiprocessing anomalies (Graham 1969, the paper's ref. 6).
//!
//! The classic 9-task instance whose list schedule gets *worse* when the
//! system gets "better": more processors, shorter tasks or fewer
//! precedence constraints all increase the list-schedule makespan. The
//! paper observes that "the SA algorithm is able to optimally solve the
//! Graham list scheduling anomalies"; [`crate::optimal`] provides the
//! reference optimum and the tests in this crate (and the `anomalies`
//! bench binary) reproduce the claim.
//!
//! Task times `(3, 2, 2, 2, 4, 4, 4, 4, 9)` and precedence
//! `T1 <* T9`, `T4 <* T5, T6, T7, T8` (1-based); the classic list
//! `L = (T1, …, T9)` on 3 processors yields makespan 12 (optimal), but
//!
//! * 4 processors → 15,
//! * every time reduced by 1 → 13,
//! * dropping `T4 <* T5` and `T4 <* T6` → 16.

use anneal_graph::{TaskGraph, TaskGraphBuilder, Work};

/// Time scale: one Graham unit in nanoseconds (keeps integer math
/// comfortable alongside the µs-scale workloads).
pub const UNIT: Work = 1_000;

const TIMES: [Work; 9] = [3, 2, 2, 2, 4, 4, 4, 4, 9];
/// Edges in 0-based indices: T1→T9, T4→{T5,T6,T7,T8}.
const EDGES: [(usize, usize); 5] = [(0, 8), (3, 4), (3, 5), (3, 6), (3, 7)];

// lint:allow(panic) reason="the hard-coded Graham instances are valid DAGs"
fn build(times: &[Work; 9], edges: &[(usize, usize)]) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(9, edges.len());
    let ids: Vec<_> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| b.add_named_task(t * UNIT, format!("T{}", i + 1)))
        .collect();
    for &(x, y) in edges {
        b.add_edge(ids[x], ids[y], 0).unwrap();
    }
    b.build().expect("anomaly instance is acyclic")
}

/// The original instance (schedule on 3 processors; list makespan 12).
pub fn graham_original() -> TaskGraph {
    build(&TIMES, &EDGES)
}

/// Same instance with every task time reduced by one unit (list
/// makespan rises to 13 on 3 processors).
pub fn graham_shorter_times() -> TaskGraph {
    let times: [Work; 9] = std::array::from_fn(|i| TIMES[i] - 1);
    build(&times, &EDGES)
}

/// Same instance with `T4 <* T5` and `T4 <* T6` removed (list makespan
/// rises to 16 on 3 processors).
pub fn graham_relaxed_precedence() -> TaskGraph {
    build(
        &TIMES,
        EDGES[..1]
            .iter()
            .chain(&EDGES[3..])
            .copied()
            .collect::<Vec<_>>()
            .as_slice(),
    )
}

/// The four anomaly scenarios: `(name, graph, processors)`. The first
/// entry is the baseline; the others are the "improved" systems whose
/// list schedules degrade.
pub fn anomaly_scenarios() -> Vec<(&'static str, TaskGraph, usize)> {
    vec![
        ("original (3 procs)", graham_original(), 3),
        ("more processors (4 procs)", graham_original(), 4),
        ("shorter tasks (3 procs)", graham_shorter_times(), 3),
        (
            "relaxed precedence (3 procs)",
            graham_relaxed_precedence(),
            3,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{ListScheduler, PriorityPolicy};
    use crate::optimal::{optimal_makespan, OptimalResult};
    use anneal_sim::{simulate, SimConfig};
    use anneal_topology::builders::bus;
    use anneal_topology::CommParams;

    fn fifo_makespan(g: &TaskGraph, procs: usize) -> Work {
        let mut s = ListScheduler::new(PriorityPolicy::Fifo);
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        simulate(g, &bus(procs), &CommParams::zero(), &mut s, &cfg)
            .unwrap()
            .makespan
    }

    #[test]
    fn classic_list_makespans() {
        assert_eq!(fifo_makespan(&graham_original(), 3), 12 * UNIT);
        assert_eq!(fifo_makespan(&graham_original(), 4), 15 * UNIT);
        assert_eq!(fifo_makespan(&graham_shorter_times(), 3), 13 * UNIT);
        assert_eq!(fifo_makespan(&graham_relaxed_precedence(), 3), 16 * UNIT);
    }

    #[test]
    fn optima_are_unaffected_by_the_improvements() {
        assert_eq!(
            optimal_makespan(&graham_original(), 3, 10_000_000),
            OptimalResult::Exact(12 * UNIT)
        );
        assert_eq!(
            optimal_makespan(&graham_original(), 4, 10_000_000),
            OptimalResult::Exact(12 * UNIT)
        );
        assert_eq!(
            optimal_makespan(&graham_shorter_times(), 3, 10_000_000),
            OptimalResult::Exact(10 * UNIT)
        );
        assert_eq!(
            optimal_makespan(&graham_relaxed_precedence(), 3, 10_000_000),
            OptimalResult::Exact(12 * UNIT)
        );
    }

    #[test]
    fn anomalies_strictly_degrade_list_schedules() {
        let base = fifo_makespan(&graham_original(), 3);
        for (name, g, procs) in anomaly_scenarios().iter().skip(1) {
            let m = fifo_makespan(g, *procs);
            assert!(m > base, "{name}: {m} not worse than {base}");
        }
    }

    #[test]
    fn instance_shapes() {
        let g = graham_original();
        assert_eq!(g.num_tasks(), 9);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.total_work(), 34 * UNIT);
        let r = graham_relaxed_precedence();
        assert_eq!(r.num_edges(), 3);
        let s = graham_shorter_times();
        assert_eq!(s.total_work(), 25 * UNIT);
    }
}
