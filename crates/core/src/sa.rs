//! The staged simulated-annealing scheduler (the paper's algorithm).

use anneal_graph::levels::bottom_levels;
use anneal_graph::{TaskId, Work};
use anneal_sim::{EpochContext, OnlineScheduler};
use anneal_topology::ProcId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::annealer::{anneal_packet, AnnealParams, InitRule};
use crate::boltzmann::AcceptanceRule;
use crate::cooling::CoolingSchedule;
use crate::cost::{BalanceRange, CostModel};
use crate::lane::{LaneCounters, SaLane, SaScratch, TurboTuning};
use crate::packet::AnnealingPacket;
use crate::rng_stream::CounterRng;
use crate::trace::PacketTrace;

/// Full configuration of the SA scheduler.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Load-balance weight `w_b` (the paper tunes `w_b + w_c = 1`;
    /// Figure 1 uses 0.5/0.5).
    pub wb: f64,
    /// Communication weight `w_c`.
    pub wc: f64,
    /// Cooling schedule.
    pub cooling: CoolingSchedule,
    /// Per-packet temperature-step cap `N_I`.
    pub max_iters: u64,
    /// Convergence rule: cost constant across this many temperature
    /// steps (the paper uses five).
    pub stable_iters: u64,
    /// Moves proposed per temperature step (0 = `max(8, 2 × packet size)`).
    pub moves_per_temp: usize,
    /// Acceptance rule (paper: heat bath, eq. 1).
    pub acceptance: AcceptanceRule,
    /// Restore the best mapping seen in a packet before dispatching.
    pub keep_best: bool,
    /// Initial mapping rule.
    pub init: InitRule,
    /// `ΔF_b` convention.
    pub balance_range: BalanceRange,
    /// RNG seed; identical seeds give identical schedules.
    pub seed: u64,
    /// Record per-iteration traces of every packet (Figure 1 data).
    pub record_traces: bool,
    /// Which inner-loop implementation runs the packets. The default
    /// [`SaLane::DeltaTable`] is bit-identical to [`SaLane::Exact`].
    pub lane: SaLane,
    /// Attribution toggles for the turbo lane's lossy ingredients
    /// (ignored by the other lanes). The default enables all three.
    pub turbo_tuning: TurboTuning,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            wb: 0.5,
            wc: 0.5,
            cooling: CoolingSchedule::default_geometric(),
            max_iters: 300,
            stable_iters: 5,
            moves_per_temp: 0,
            acceptance: AcceptanceRule::HeatBath,
            keep_best: true,
            init: InitRule::Random,
            balance_range: BalanceRange::Full,
            seed: 42,
            record_traces: false,
            lane: SaLane::default(),
            turbo_tuning: TurboTuning::default(),
        }
    }
}

impl SaConfig {
    /// Sets `w_b` and `w_c = 1 − w_b`.
    pub fn with_balance_weight(mut self, wb: f64) -> Self {
        assert!((0.0..=1.0).contains(&wb));
        self.wb = wb;
        self.wc = 1.0 - wb;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the SA lane.
    pub fn with_lane(mut self, lane: SaLane) -> Self {
        self.lane = lane;
        self
    }
}

/// Aggregate statistics over a whole run (§6a of the paper reports, for
/// NE: 95 tasks in 65 packets, on average 15 candidates per 1.46 free
/// processors).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SaStats {
    /// Packets annealed.
    pub packets: u64,
    /// Total temperature steps across packets.
    pub iterations: u64,
    /// Total moves proposed.
    pub moves: u64,
    /// Total accepted moves.
    pub accepted: u64,
    /// Sum of candidate counts.
    pub candidates: u64,
    /// Sum of idle-processor counts.
    pub idle: u64,
    /// Total tasks dispatched.
    pub assigned: u64,
    /// Fast-lane acceptance decisions resolved without a table lookup
    /// or `exp()` (zero on the exact lane).
    pub lane_shortcut: u64,
    /// Fast-lane decisions resolved by the quantized table bounds.
    pub lane_table: u64,
    /// Fast-lane decisions that fell back to the exact Boltzmann path.
    pub lane_fallback: u64,
    /// Counter-RNG draws consumed (turbo lane only; zero elsewhere).
    pub lane_rng_draws: u64,
}

impl SaStats {
    /// Mean candidates per packet.
    pub fn avg_candidates(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.candidates as f64 / self.packets as f64
        }
    }

    /// Mean idle processors per packet.
    pub fn avg_idle(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.idle as f64 / self.packets as f64
        }
    }

    /// Mean temperature iterations per packet.
    pub fn iterations_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.iterations as f64 / self.packets as f64
        }
    }

    /// Mean accepted-move rate.
    pub fn acceptance_rate(&self) -> f64 {
        if self.moves == 0 {
            0.0
        } else {
            self.accepted as f64 / self.moves as f64
        }
    }

    /// Accumulates this run into `r` (`sa.*` counters). Deterministic:
    /// every field is a pure function of graph, topology and seed.
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sa.packets", self.packets);
        r.add("sa.iterations", self.iterations);
        r.add("sa.moves", self.moves);
        r.add("sa.accepted", self.accepted);
        r.add("sa.candidates", self.candidates);
        r.add("sa.idle", self.idle);
        r.add("sa.assigned", self.assigned);
        r.add("sa.lane.shortcut", self.lane_shortcut);
        r.add("sa.lane.table", self.lane_table);
        r.add("sa.lane.fallback", self.lane_fallback);
        r.add("sa.lane.rng_draws", self.lane_rng_draws);
    }
}

/// The staged SA scheduler. Implements [`OnlineScheduler`]; plug it into
/// `anneal_sim::simulate`.
#[derive(Debug)]
pub struct SaScheduler {
    cfg: SaConfig,
    rng: StdRng,
    levels: Option<Vec<Work>>,
    scratch: SaScratch,
    /// Run statistics (reset per scheduler instance).
    pub stats: SaStats,
    /// Recorded packet traces (when `cfg.record_traces`).
    pub traces: Vec<PacketTrace>,
}

impl SaScheduler {
    /// Creates a scheduler from a configuration.
    pub fn new(cfg: SaConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        SaScheduler {
            cfg,
            rng,
            levels: None,
            scratch: SaScratch::new(),
            stats: SaStats::default(),
            traces: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SaConfig {
        &self.cfg
    }

    /// Installs a (possibly pre-warmed) fast-lane scratch, e.g. one
    /// recycled across restarts through a
    /// [`crate::parallel::ScratchPool`].
    pub fn set_scratch(&mut self, scratch: SaScratch) {
        self.scratch = scratch;
    }

    /// Takes the fast-lane scratch back out (for pooling), leaving an
    /// empty one behind.
    pub fn take_scratch(&mut self) -> SaScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Resets the RNG to `seed` and clears statistics and traces while
    /// keeping the warmed buffers (levels cache, fast-lane scratch).
    /// Only valid for re-running the *same* instance: the cached
    /// bottom levels belong to the graph of the previous run.
    pub fn reseed(&mut self, seed: u64) {
        self.cfg.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        self.stats = SaStats::default();
        self.traces.clear();
    }
}

impl OnlineScheduler for SaScheduler {
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        if ctx.ready.is_empty() || ctx.idle.is_empty() {
            return;
        }
        let levels = self.levels.get_or_insert_with(|| bottom_levels(ctx.graph));
        let params = AnnealParams {
            cooling: self.cfg.cooling,
            max_iters: self.cfg.max_iters,
            stable_iters: self.cfg.stable_iters,
            moves_per_temp: self.cfg.moves_per_temp,
            acceptance: self.cfg.acceptance,
            keep_best: self.cfg.keep_best,
            init: self.cfg.init,
        };
        match self.cfg.lane {
            SaLane::Exact => {
                let packet = AnnealingPacket::from_epoch(ctx, levels);
                let cm = CostModel::new(&packet, self.cfg.wb, self.cfg.wc, self.cfg.balance_range);
                let outcome =
                    anneal_packet(&packet, &cm, &params, &mut self.rng, self.cfg.record_traces);

                self.stats.packets += 1;
                self.stats.iterations += outcome.iterations;
                self.stats.moves += outcome.moves;
                self.stats.accepted += outcome.accepted;
                self.stats.candidates += packet.num_tasks() as u64;
                self.stats.idle += packet.num_procs() as u64;
                self.stats.assigned += outcome.assignment.len() as u64;
                if let Some(mut tr) = outcome.trace {
                    tr.packet = self.stats.packets - 1;
                    self.traces.push(tr);
                }
                out.extend(
                    outcome
                        .assignment
                        .iter()
                        .map(|&(t, p)| (packet.tasks[t], packet.procs[p])),
                );
            }
            SaLane::Turbo => {
                self.scratch.load_epoch(
                    ctx,
                    levels,
                    self.cfg.wb,
                    self.cfg.wc,
                    self.cfg.balance_range,
                );
                let mut counters = LaneCounters::default();
                let tuning = self.cfg.turbo_tuning;
                // Packet index = counter-RNG stream id: every packet
                // gets an independent, order-free draw stream keyed by
                // (seed, packet) — the sequential `self.rng` is not
                // touched, so its state never depends on packet count.
                let lo = if tuning.counter_rng {
                    let mut crng = CounterRng::new(self.cfg.seed, self.stats.packets);
                    let lo = self.scratch.anneal_turbo(
                        &params,
                        &mut crng,
                        tuning,
                        self.cfg.record_traces,
                        &mut counters,
                    );
                    self.stats.lane_rng_draws += crng.draws();
                    lo
                } else {
                    self.scratch.anneal_turbo(
                        &params,
                        &mut self.rng,
                        tuning,
                        self.cfg.record_traces,
                        &mut counters,
                    )
                };

                self.stats.packets += 1;
                self.stats.iterations += lo.iterations;
                self.stats.moves += lo.moves;
                self.stats.accepted += lo.accepted;
                self.stats.candidates += ctx.ready.len() as u64;
                self.stats.idle += ctx.idle.len() as u64;
                self.stats.lane_shortcut += counters.shortcut;
                self.stats.lane_table += counters.table;
                self.stats.lane_fallback += counters.fallback;
                if let Some(mut tr) = lo.trace {
                    tr.packet = self.stats.packets - 1;
                    self.traces.push(tr);
                }
                let before = out.len();
                let (tasks, procs) = (self.scratch.task_ids(), self.scratch.proc_ids());
                out.extend(
                    self.scratch
                        .assignments()
                        .map(|(t, p)| (tasks[t], procs[p])),
                );
                self.stats.assigned += (out.len() - before) as u64;
            }
            lane => {
                self.scratch.load_epoch(
                    ctx,
                    levels,
                    self.cfg.wb,
                    self.cfg.wc,
                    self.cfg.balance_range,
                );
                let mut counters = LaneCounters::default();
                let lo = self.scratch.anneal_loaded(
                    &params,
                    &mut self.rng,
                    lane == SaLane::Quantized,
                    self.cfg.record_traces,
                    &mut counters,
                );

                self.stats.packets += 1;
                self.stats.iterations += lo.iterations;
                self.stats.moves += lo.moves;
                self.stats.accepted += lo.accepted;
                self.stats.candidates += ctx.ready.len() as u64;
                self.stats.idle += ctx.idle.len() as u64;
                self.stats.lane_shortcut += counters.shortcut;
                self.stats.lane_table += counters.table;
                self.stats.lane_fallback += counters.fallback;
                if let Some(mut tr) = lo.trace {
                    tr.packet = self.stats.packets - 1;
                    self.traces.push(tr);
                }
                let before = out.len();
                let (tasks, procs) = (self.scratch.task_ids(), self.scratch.proc_ids());
                out.extend(
                    self.scratch
                        .assignments()
                        .map(|(t, p)| (tasks[t], procs[p])),
                );
                self.stats.assigned += (out.len() - before) as u64;
            }
        }
    }

    fn name(&self) -> &str {
        "simulated-annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, SimConfig};
    use anneal_topology::builders::{hypercube, linear};
    use anneal_topology::CommParams;

    fn diamondish() -> anneal_graph::TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(us(10.0));
        let x = b.add_task(us(20.0));
        let y = b.add_task(us(30.0));
        let z = b.add_task(us(25.0));
        let d = b.add_task(us(40.0));
        b.add_edge(a, x, us(4.0)).unwrap();
        b.add_edge(a, y, us(4.0)).unwrap();
        b.add_edge(a, z, us(8.0)).unwrap();
        b.add_edge(x, d, us(4.0)).unwrap();
        b.add_edge(y, d, us(4.0)).unwrap();
        b.add_edge(z, d, us(4.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn schedules_complete_and_audit() {
        let g = diamondish();
        let mut s = SaScheduler::new(SaConfig::default());
        let r = simulate(
            &g,
            &hypercube(3),
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        r.audit(&g).unwrap();
        assert_eq!(s.stats.assigned, 5);
        assert!(s.stats.packets >= 2);
        assert_eq!(r.scheduler, "simulated-annealing");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = diamondish();
        let run = |seed| {
            let mut s = SaScheduler::new(SaConfig::default().with_seed(seed));
            simulate(
                &g,
                &hypercube(3),
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap()
            .makespan
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn single_proc_serial_schedule() {
        let g = diamondish();
        let mut s = SaScheduler::new(SaConfig::default());
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let r = simulate(&g, &linear(1), &CommParams::zero(), &mut s, &cfg).unwrap();
        assert_eq!(r.makespan, g.total_work());
        r.audit(&g).unwrap();
    }

    #[test]
    fn traces_recorded_when_enabled() {
        let g = diamondish();
        let cfg = SaConfig {
            record_traces: true,
            ..SaConfig::default()
        };
        let mut s = SaScheduler::new(cfg);
        simulate(
            &g,
            &hypercube(3),
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(s.traces.len() as u64, s.stats.packets);
        assert!(s.traces.iter().all(|t| !t.samples.is_empty()));
    }

    #[test]
    fn stats_aggregate_sensibly() {
        let g = diamondish();
        let mut s = SaScheduler::new(SaConfig::default());
        simulate(
            &g,
            &hypercube(3),
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(s.stats.avg_candidates() >= 1.0);
        assert!(s.stats.avg_idle() >= 1.0);
        assert!(s.stats.acceptance_rate() > 0.0 && s.stats.acceptance_rate() <= 1.0);
        assert!(s.stats.iterations_per_packet() >= 1.0);
        assert_eq!(SaStats::default().iterations_per_packet(), 0.0);
    }

    #[test]
    fn weight_builder_enforces_sum() {
        let c = SaConfig::default().with_balance_weight(0.3);
        assert!((c.wb - 0.3).abs() < 1e-12);
        assert!((c.wc - 0.7).abs() < 1e-12);
    }
}
