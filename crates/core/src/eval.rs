//! The shared move-evaluation layer for mapping-based schedulers.
//!
//! Before this module, every site that annealed or compared complete
//! task→processor mappings re-implemented the same closure — "replay
//! the mapping through the discrete-event engine and read the
//! makespan" — once in `static_sa`, once in the arena's portfolio
//! registry, once per adversarial-search candidate. Each call paid for
//! a full [`simulate`] (fresh route table, Gantt recording, statistics,
//! allocated result), which made whole-graph annealing by far the most
//! expensive scheduler in the workspace.
//!
//! [`Evaluator`] abstracts that closure behind a baseline/candidate
//! protocol shaped for simulated annealing:
//!
//! 1. [`Evaluator::reset`] establishes a baseline mapping and returns
//!    its makespan;
//! 2. [`Evaluator::eval_relocate`] / [`Evaluator::eval_swap`] return
//!    the makespan of a single-move candidate without disturbing the
//!    baseline;
//! 3. [`Evaluator::commit`] adopts the last candidate (an accepted SA
//!    move).
//!
//! Two implementations share the contract and agree **bit for bit**:
//!
//! * [`FullReplayEvaluator`] — the reference: one complete
//!   [`simulate`] per evaluation, exactly what the pre-refactor
//!   closures did;
//! * [`IncrementalEvaluator`] — [`anneal_sim::FixedEval`]: a
//!   specialized allocation-free fixed-mapping engine that resumes each
//!   candidate from a snapshot of the baseline at the moved task's
//!   ready time, replaying only the affected suffix.
//!
//! [`EvaluatorKind`] selects between them (`--evaluator
//! {full,incremental}` in the `arena`/`campaign` binaries), and
//! [`replay_mapping`] is the one shared "mapping → full [`SimResult`]"
//! helper for the sites that need more than the makespan.

use anneal_graph::levels::bottom_levels;
use anneal_graph::{TaskGraph, TaskId};
use anneal_sim::{simulate, FixedEval, FixedMapping, SimConfig, SimError, SimResult};
use anneal_topology::{CommParams, ProcId, Topology};

/// The dispatch priority shared by the level-aware static replays:
/// higher bottom level dispatches first, ties by task id (matches the
/// list-scheduler baselines).
pub fn level_dispatch_order(g: &TaskGraph) -> Vec<u64> {
    bottom_levels(g).iter().map(|&l| u64::MAX - l).collect()
}

/// Which [`Evaluator`] implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvaluatorKind {
    /// One full discrete-event simulation per candidate (the reference
    /// semantics; slow).
    Full,
    /// Incremental fixed-mapping kernel ([`anneal_sim::FixedEval`]):
    /// bit-identical makespans, several times faster per move.
    #[default]
    Incremental,
}

impl EvaluatorKind {
    /// Stable command-line name (`"full"` / `"incremental"`).
    pub fn name(self) -> &'static str {
        match self {
            EvaluatorKind::Full => "full",
            EvaluatorKind::Incremental => "incremental",
        }
    }

    /// Builds an evaluator of this kind for one instance. `order` is
    /// the per-task dispatch priority (lower first, ties by id),
    /// matching [`FixedMapping::with_order`].
    pub fn build<'a>(
        self,
        g: &'a TaskGraph,
        topo: &'a Topology,
        params: &'a CommParams,
        sim_cfg: &'a SimConfig,
        order: Vec<u64>,
    ) -> Result<Box<dyn Evaluator + 'a>, SimError> {
        Ok(match self {
            EvaluatorKind::Full => {
                Box::new(FullReplayEvaluator::new(g, topo, params, sim_cfg, order))
            }
            EvaluatorKind::Incremental => {
                Box::new(IncrementalEvaluator::new(g, topo, params, sim_cfg, order)?)
            }
        })
    }
}

impl std::str::FromStr for EvaluatorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(EvaluatorKind::Full),
            "incremental" => Ok(EvaluatorKind::Incremental),
            other => Err(format!(
                "unknown evaluator '{other}' (expected 'full' or 'incremental')"
            )),
        }
    }
}

impl std::fmt::Display for EvaluatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Makespan evaluation of fixed mappings under single-task moves.
///
/// The contract every implementation must honor (and the proptest suite
/// in `tests/evaluator.rs` enforces): the returned makespan equals a
/// from-scratch engine replay of the candidate mapping with the
/// configured dispatch order — for any baseline, any move, and any
/// history of commits and rejections.
pub trait Evaluator {
    /// Makes `mapping` the committed baseline (full evaluation) and
    /// returns its makespan. Discards any pending candidate.
    fn reset(&mut self, mapping: &[ProcId]) -> Result<u64, SimError>;

    /// Makespan of the baseline with `task` moved to `to`; the baseline
    /// is unchanged until [`Evaluator::commit`].
    fn eval_relocate(&mut self, task: TaskId, to: ProcId) -> Result<u64, SimError>;

    /// Makespan of the baseline with tasks `a` and `b` exchanging
    /// processors; the baseline is unchanged until
    /// [`Evaluator::commit`].
    fn eval_swap(&mut self, a: TaskId, b: TaskId) -> Result<u64, SimError>;

    /// Adopts the most recently evaluated candidate as the baseline.
    ///
    /// # Panics
    ///
    /// Panics when no candidate evaluation succeeded since the last
    /// `reset`/`commit`.
    fn commit(&mut self);

    /// The committed baseline mapping.
    fn mapping(&self) -> &[ProcId];

    /// Candidate evaluations performed so far (resets + probed moves).
    fn evaluations(&self) -> u64;

    /// Which implementation this is.
    fn kind(&self) -> EvaluatorKind;
}

/// Replays a complete mapping through the discrete-event engine.
///
/// The single shared implementation of "evaluate a static schedule
/// under the simulator's timing model": `static_sa` uses it for its
/// final result, and the arena's mapped portfolio entries route their
/// cell evaluations through it.
pub fn replay_mapping(
    g: &TaskGraph,
    topo: &Topology,
    params: &CommParams,
    sim_cfg: &SimConfig,
    mapping: Vec<ProcId>,
    order: Option<Vec<u64>>,
) -> Result<SimResult, SimError> {
    let mut sched = FixedMapping::new(mapping);
    if let Some(order) = order {
        sched = sched.with_order(order);
    }
    simulate(g, topo, params, &mut sched, sim_cfg)
}

/// The reference [`Evaluator`]: every evaluation is one complete
/// [`simulate`] call — exactly the "full simulation per move" cost the
/// incremental kernel removes. Kept as ground truth for equivalence
/// tests and as the `--evaluator full` toggle.
#[derive(Debug)]
pub struct FullReplayEvaluator<'a> {
    g: &'a TaskGraph,
    topo: &'a Topology,
    params: &'a CommParams,
    sim_cfg: &'a SimConfig,
    order: Vec<u64>,
    base: Vec<ProcId>,
    cand: Vec<ProcId>,
    has_base: bool,
    has_candidate: bool,
    evaluations: u64,
}

impl<'a> FullReplayEvaluator<'a> {
    /// Creates the replay evaluator.
    ///
    /// # Panics
    ///
    /// Panics when `order.len() != g.num_tasks()`.
    pub fn new(
        g: &'a TaskGraph,
        topo: &'a Topology,
        params: &'a CommParams,
        sim_cfg: &'a SimConfig,
        order: Vec<u64>,
    ) -> Self {
        assert_eq!(order.len(), g.num_tasks(), "order must cover every task");
        FullReplayEvaluator {
            g,
            topo,
            params,
            sim_cfg,
            order,
            base: Vec::new(),
            cand: Vec::new(),
            has_base: false,
            has_candidate: false,
            evaluations: 0,
        }
    }

    fn check_mapping(&self, mapping: &[ProcId]) -> Result<(), SimError> {
        if mapping.len() != self.g.num_tasks() {
            return Err(SimError::InvalidAssignment(format!(
                "mapping covers {} of {} tasks",
                mapping.len(),
                self.g.num_tasks()
            )));
        }
        if let Some(p) = mapping.iter().find(|p| p.index() >= self.topo.num_procs()) {
            return Err(SimError::InvalidAssignment(format!(
                "{p} is not in the topology"
            )));
        }
        Ok(())
    }

    fn replay(&mut self) -> Result<u64, SimError> {
        let r = replay_mapping(
            self.g,
            self.topo,
            self.params,
            self.sim_cfg,
            self.cand.clone(),
            Some(self.order.clone()),
        )?;
        self.evaluations += 1;
        self.has_candidate = true;
        Ok(r.makespan)
    }
}

impl Evaluator for FullReplayEvaluator<'_> {
    fn reset(&mut self, mapping: &[ProcId]) -> Result<u64, SimError> {
        self.check_mapping(mapping)?;
        self.has_base = false;
        self.has_candidate = false;
        self.cand.clear();
        self.cand.extend_from_slice(mapping);
        let makespan = self.replay()?;
        self.base.clone_from(&self.cand);
        self.has_base = true;
        self.has_candidate = false;
        Ok(makespan)
    }

    fn eval_relocate(&mut self, task: TaskId, to: ProcId) -> Result<u64, SimError> {
        assert!(self.has_base, "no baseline: call reset() first");
        assert!(to.index() < self.topo.num_procs(), "{to} out of range");
        self.has_candidate = false;
        self.cand.clone_from(&self.base);
        self.cand[task.index()] = to;
        self.replay()
    }

    fn eval_swap(&mut self, a: TaskId, b: TaskId) -> Result<u64, SimError> {
        assert!(self.has_base, "no baseline: call reset() first");
        self.has_candidate = false;
        self.cand.clone_from(&self.base);
        self.cand.swap(a.index(), b.index());
        self.replay()
    }

    fn commit(&mut self) {
        assert!(self.has_candidate, "no candidate to commit");
        self.base.clone_from(&self.cand);
        self.has_candidate = false;
    }

    fn mapping(&self) -> &[ProcId] {
        assert!(self.has_base, "no baseline: call reset() first");
        &self.base
    }

    fn evaluations(&self) -> u64 {
        self.evaluations
    }

    fn kind(&self) -> EvaluatorKind {
        EvaluatorKind::Full
    }
}

/// The incremental [`Evaluator`]: a thin trait adapter over
/// [`anneal_sim::FixedEval`] (specialized engine, reused buffers,
/// snapshot-resume move evaluation).
#[derive(Debug)]
pub struct IncrementalEvaluator<'a> {
    inner: FixedEval<'a>,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Creates the incremental evaluator; errors if the topology is
    /// disconnected.
    ///
    /// # Panics
    ///
    /// Panics when `order.len() != g.num_tasks()`.
    pub fn new(
        g: &'a TaskGraph,
        topo: &Topology,
        params: &CommParams,
        sim_cfg: &SimConfig,
        order: Vec<u64>,
    ) -> Result<Self, SimError> {
        Ok(IncrementalEvaluator {
            inner: FixedEval::new(g, topo, params, sim_cfg, order)?,
        })
    }
}

impl Evaluator for IncrementalEvaluator<'_> {
    fn reset(&mut self, mapping: &[ProcId]) -> Result<u64, SimError> {
        self.inner.reset(mapping)
    }

    fn eval_relocate(&mut self, task: TaskId, to: ProcId) -> Result<u64, SimError> {
        self.inner.eval_relocate(task, to)
    }

    fn eval_swap(&mut self, a: TaskId, b: TaskId) -> Result<u64, SimError> {
        self.inner.eval_swap(a, b)
    }

    fn commit(&mut self) {
        self.inner.commit();
    }

    fn mapping(&self) -> &[ProcId] {
        self.inner.mapping()
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }

    fn kind(&self) -> EvaluatorKind {
        EvaluatorKind::Incremental
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::generate::{layered_random, LayeredConfig, Range};
    use anneal_graph::units::us;
    use anneal_topology::builders::hypercube;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(8);
        layered_random(
            &LayeredConfig {
                layers: 3,
                width: 5,
                edge_prob: 0.4,
                load: Range::new(us(2.0), us(30.0)),
                comm: Range::new(us(1.0), us(6.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn kind_parsing_and_names() {
        assert_eq!(
            "full".parse::<EvaluatorKind>().unwrap(),
            EvaluatorKind::Full
        );
        assert_eq!(
            "incremental".parse::<EvaluatorKind>().unwrap(),
            EvaluatorKind::Incremental
        );
        assert!("nope".parse::<EvaluatorKind>().is_err());
        assert_eq!(EvaluatorKind::Full.to_string(), "full");
        assert_eq!(EvaluatorKind::default(), EvaluatorKind::Incremental);
    }

    #[test]
    fn both_kinds_agree_on_a_move_chain() {
        let g = sample();
        let n = g.num_tasks();
        let topo = hypercube(3);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = (0..n as u64).collect();
        let mut full = EvaluatorKind::Full
            .build(&g, &topo, &params, &cfg, order.clone())
            .unwrap();
        let mut incr = EvaluatorKind::Incremental
            .build(&g, &topo, &params, &cfg, order)
            .unwrap();
        let mapping: Vec<ProcId> = (0..n).map(|i| ProcId::from_index(i % 8)).collect();
        assert_eq!(full.reset(&mapping).unwrap(), incr.reset(&mapping).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let t = TaskId::from_index(rng.gen_range(0..n));
            let (a, b);
            if rng.gen_bool(0.5) {
                let q = ProcId::from_index(rng.gen_range(0..8));
                a = full.eval_relocate(t, q).unwrap();
                b = incr.eval_relocate(t, q).unwrap();
            } else {
                let u = TaskId::from_index(rng.gen_range(0..n));
                a = full.eval_swap(t, u).unwrap();
                b = incr.eval_swap(t, u).unwrap();
            }
            assert_eq!(a, b);
            if rng.gen_bool(0.5) {
                full.commit();
                incr.commit();
                assert_eq!(full.mapping(), incr.mapping());
            }
        }
        assert_eq!(full.evaluations(), incr.evaluations());
        assert_eq!(full.kind(), EvaluatorKind::Full);
        assert_eq!(incr.kind(), EvaluatorKind::Incremental);
    }

    #[test]
    fn replay_mapping_matches_reset() {
        let g = sample();
        let topo = hypercube(3);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let mapping: Vec<ProcId> = (0..g.num_tasks())
            .map(|i| ProcId::from_index(i % 8))
            .collect();
        let r = replay_mapping(&g, &topo, &params, &cfg, mapping.clone(), None).unwrap();
        r.audit(&g).unwrap();
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = EvaluatorKind::Incremental
            .build(&g, &topo, &params, &cfg, order)
            .unwrap();
        assert_eq!(ev.reset(&mapping).unwrap(), r.makespan);
    }

    #[test]
    fn invalid_mappings_error_on_both_kinds() {
        let g = sample();
        let topo = hypercube(3);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        for kind in [EvaluatorKind::Full, EvaluatorKind::Incremental] {
            let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
            let mut ev = kind.build(&g, &topo, &params, &cfg, order).unwrap();
            let bad = vec![ProcId::from_index(99); g.num_tasks()];
            assert!(
                matches!(ev.reset(&bad), Err(SimError::InvalidAssignment(_))),
                "{kind}"
            );
        }
    }
}
