//! Generic priority list scheduling.
//!
//! At each epoch the ready tasks are sorted by a static priority and
//! assigned, best first, to the idle processors in index order. The
//! Highest Level First baseline is [`PriorityPolicy::HighestLevelFirst`];
//! the other policies support the statistical comparisons of list
//! schedules (Adam, Chandy & Dickinson, ref. 1 in the paper).

use anneal_graph::levels::{bottom_levels, bottom_levels_with_comm};
use anneal_graph::{TaskGraph, TaskId, Work};
use anneal_sim::{EpochContext, OnlineScheduler};
use anneal_topology::ProcId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Static priority policies (higher value dispatches first; ties break
/// toward lower task ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityPolicy {
    /// The paper's baseline: priority = task level `n_i` (bottom level).
    HighestLevelFirst,
    /// Bottom level including communication weights along the path.
    HighestLevelFirstComm,
    /// Largest processing time first.
    LongestTaskFirst,
    /// Smallest processing time first.
    ShortestTaskFirst,
    /// List order = task id order (Graham's classic "list" semantics).
    Fifo,
    /// A random (but seed-reproducible) permutation.
    Random(u64),
}

impl PriorityPolicy {
    /// Computes the static priority vector for a graph.
    pub fn priorities(self, g: &TaskGraph) -> Vec<Work> {
        match self {
            PriorityPolicy::HighestLevelFirst => bottom_levels(g),
            PriorityPolicy::HighestLevelFirstComm => bottom_levels_with_comm(g),
            PriorityPolicy::LongestTaskFirst => g.loads().to_vec(),
            PriorityPolicy::ShortestTaskFirst => g.loads().iter().map(|&l| Work::MAX - l).collect(),
            PriorityPolicy::Fifo => {
                let n = g.num_tasks() as Work;
                (0..g.num_tasks()).map(|i| n - i as Work).collect()
            }
            PriorityPolicy::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut ranks: Vec<Work> = (1..=g.num_tasks() as Work).collect();
                ranks.shuffle(&mut rng);
                ranks
            }
        }
    }

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PriorityPolicy::HighestLevelFirst => "hlf",
            PriorityPolicy::HighestLevelFirstComm => "hlf-comm",
            PriorityPolicy::LongestTaskFirst => "lpt",
            PriorityPolicy::ShortestTaskFirst => "spt",
            PriorityPolicy::Fifo => "fifo",
            PriorityPolicy::Random(_) => "random",
        }
    }
}

/// A list scheduler with a pluggable priority policy.
#[derive(Debug, Clone)]
pub struct ListScheduler {
    policy: PriorityPolicy,
    priorities: Option<Vec<Work>>,
}

impl ListScheduler {
    /// Creates a list scheduler.
    pub fn new(policy: PriorityPolicy) -> Self {
        ListScheduler {
            policy,
            priorities: None,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> PriorityPolicy {
        self.policy
    }
}

impl OnlineScheduler for ListScheduler {
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        let pr = self
            .priorities
            .get_or_insert_with(|| self.policy.priorities(ctx.graph));
        let mut ranked: Vec<TaskId> = ctx.ready.to_vec();
        ranked.sort_by_key(|&t| (std::cmp::Reverse(pr[t.index()]), t));
        for (&t, &p) in ranked.iter().zip(ctx.idle.iter()) {
            out.push((t, p));
        }
    }

    fn name(&self) -> &str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, SimConfig};
    use anneal_topology::builders::bus;
    use anneal_topology::CommParams;

    fn wide_graph() -> TaskGraph {
        // root -> 4 children with very different levels
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(us(1.0));
        let chain_head = b.add_task(us(5.0)); // continues into a chain: high level
        let mid = b.add_task(us(5.0));
        let leafy1 = b.add_task(us(2.0)); // low level
        let leafy2 = b.add_task(us(3.0));
        let tail = b.add_task(us(50.0));
        b.add_edge(root, chain_head, 0).unwrap();
        b.add_edge(root, leafy1, 0).unwrap();
        b.add_edge(root, leafy2, 0).unwrap();
        b.add_edge(chain_head, mid, 0).unwrap();
        b.add_edge(mid, tail, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hlf_prefers_long_chain() {
        let g = wide_graph();
        let pr = PriorityPolicy::HighestLevelFirst.priorities(&g);
        // chain head level = 5+5+50 = 60us; leafy1 = 2us.
        assert_eq!(pr[1], us(60.0));
        assert_eq!(pr[3], us(2.0));
        assert!(pr[1] > pr[3]);
    }

    #[test]
    fn policies_produce_valid_schedules() {
        let g = wide_graph();
        let topo = bus(2);
        for policy in [
            PriorityPolicy::HighestLevelFirst,
            PriorityPolicy::HighestLevelFirstComm,
            PriorityPolicy::LongestTaskFirst,
            PriorityPolicy::ShortestTaskFirst,
            PriorityPolicy::Fifo,
            PriorityPolicy::Random(5),
        ] {
            let mut s = ListScheduler::new(policy);
            let r = simulate(
                &g,
                &topo,
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap();
            r.audit(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
        }
    }

    #[test]
    fn fifo_respects_id_order() {
        let mut b = TaskGraphBuilder::new();
        for _ in 0..4 {
            b.add_task(us(1.0));
        }
        let g = b.build().unwrap();
        let pr = PriorityPolicy::Fifo.priorities(&g);
        assert!(pr[0] > pr[1] && pr[1] > pr[2] && pr[2] > pr[3]);
    }

    #[test]
    fn random_is_reproducible_permutation() {
        let g = wide_graph();
        let a = PriorityPolicy::Random(9).priorities(&g);
        let b = PriorityPolicy::Random(9).priorities(&g);
        let c = PriorityPolicy::Random(10).priorities(&g);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn spt_inverts_lpt() {
        let g = wide_graph();
        let lpt = PriorityPolicy::LongestTaskFirst.priorities(&g);
        let spt = PriorityPolicy::ShortestTaskFirst.priorities(&g);
        // order reversed: the largest LPT priority has the smallest SPT
        let lpt_max = lpt.iter().position(|&v| v == *lpt.iter().max().unwrap());
        let spt_min = spt.iter().position(|&v| v == *spt.iter().min().unwrap());
        assert_eq!(lpt_max, spt_min);
    }

    #[test]
    fn names() {
        assert_eq!(ListScheduler::new(PriorityPolicy::Fifo).name(), "fifo");
        assert_eq!(
            ListScheduler::new(PriorityPolicy::HighestLevelFirst).name(),
            "hlf"
        );
    }
}
