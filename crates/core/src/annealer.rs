//! The per-packet annealing loop (paper §5, step 2).

use rand::Rng;

use crate::boltzmann::{accept, AcceptanceRule};
use crate::cooling::CoolingSchedule;
use crate::cost::CostModel;
use crate::mapping::PacketMapping;
use crate::packet::AnnealingPacket;
use crate::trace::{PacketTrace, TraceSample};

/// Initial-mapping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitRule {
    /// Random saturating assignment (the paper's arbitrary start).
    Random,
    /// Deterministic task-`i` → processor-`i` saturation (tests,
    /// reproducibility studies).
    InOrder,
}

/// Knobs of the per-packet loop.
///
/// One *iteration* is one temperature step `Temp_k` during which
/// several moves are proposed (`moves_per_temp`); the stop rule
/// compares the cost at consecutive temperature steps. Stopping on raw
/// single-move constancy would fire almost immediately at high
/// temperature (where most proposals are rejected), long before the
/// packet has cooled — the paper's Figure 1 shows packets annealing for
/// 100+ iterations, which matches the per-temperature reading.
#[derive(Debug, Clone)]
pub struct AnnealParams {
    /// Temperature sequence.
    pub cooling: CoolingSchedule,
    /// Cap on temperature steps `N_I` ("until … exceeding the maximum
    /// number of iterations").
    pub max_iters: u64,
    /// Stop once the cost is unchanged across this many consecutive
    /// temperature steps (the paper uses five).
    pub stable_iters: u64,
    /// Moves proposed per temperature step; 0 = automatic
    /// (`max(8, 2 × packet tasks)`).
    pub moves_per_temp: usize,
    /// Accept/reject rule (the paper's heat bath by default).
    pub acceptance: AcceptanceRule,
    /// Track and restore the best mapping seen (guards against a late
    /// uphill wander at non-zero final temperature).
    pub keep_best: bool,
    /// Initial mapping.
    pub init: InitRule,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            cooling: CoolingSchedule::default_geometric(),
            max_iters: 300,
            stable_iters: 5,
            moves_per_temp: 0,
            acceptance: AcceptanceRule::HeatBath,
            keep_best: true,
            init: InitRule::Random,
        }
    }
}

/// Result of annealing one packet.
#[derive(Debug, Clone)]
pub struct PacketOutcome {
    /// The converged mapping, as `(packet task index, packet proc
    /// index)` pairs.
    pub assignment: Vec<(usize, usize)>,
    /// Temperature steps executed.
    pub iterations: u64,
    /// Total moves proposed.
    pub moves: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Final normalized cost.
    pub final_cost: f64,
    /// Optional per-move trajectory.
    pub trace: Option<PacketTrace>,
}

/// Runs the annealing loop on one packet and returns the converged
/// mapping.
pub fn anneal_packet<R: Rng + ?Sized>(
    packet: &AnnealingPacket,
    cm: &CostModel<'_>,
    params: &AnnealParams,
    rng: &mut R,
    want_trace: bool,
) -> PacketOutcome {
    let n = packet.num_tasks();
    let p = packet.num_procs();
    assert!(n > 0 && p > 0, "empty packet");

    let mut m = PacketMapping::new(n, p);
    match params.init {
        InitRule::Random => m.saturate_random(rng),
        InitRule::InOrder => m.saturate_in_order(),
    }
    let (mut fb, mut fc) = cm.raw_full(&m);
    let mut cost = cm.total(fb, fc);
    // The best-so-far mapping is kept in a reused buffer: `clone_from`
    // instead of `clone` per improvement, so the hot loop allocates
    // nothing after this point.
    let mut best_cost = cost;
    let mut best_m = m.clone();

    let mut trace = want_trace.then(|| PacketTrace {
        packet: 0,
        epoch_time: packet.epoch_time,
        candidates: n,
        idle: p,
        samples: Vec::with_capacity(params.max_iters as usize),
    });

    // Auto sizing: ~2 proposals per candidate per temperature step keeps
    // the chance of a "false stable" window (five steps that never even
    // propose the one cost-changing move) negligible for tie-heavy
    // packets.
    let moves_per_temp = if params.moves_per_temp == 0 {
        (2 * n).max(8)
    } else {
        params.moves_per_temp
    };

    let mut accepted_count = 0u64;
    let mut stable = 0u64;
    let mut k = 0u64; // temperature step
    let mut moves = 0u64;
    while k < params.max_iters && stable < params.stable_iters {
        let temp = params.cooling.temperature(k);
        // "Cost remains constant" means no accepted move changed the
        // cost at any point during the step — a random walk that happens
        // to return to the same value is not convergence.
        let mut cost_changed = false;
        for _ in 0..moves_per_temp {
            // Arbitrarily select a task t_i and a processor p_j != m_i.
            let task = rng.gen_range(0..n);
            let cur = m.proc_of(task);
            let mv = if p == 1 && cur == Some(0) {
                None // no legal destination; a wasted draw
            } else {
                // Rejection-sample a processor different from the
                // current one; with p >= 2 or an unassigned task this
                // terminates quickly.
                let mut proc = rng.gen_range(0..p);
                while Some(proc) == cur {
                    proc = rng.gen_range(0..p);
                }
                m.propose(task, proc)
            };

            let mut was_accepted = false;
            if let Some(mv) = mv {
                let (dfb, dfc) = cm.delta(mv);
                let delta = cm.total(fb + dfb, fc + dfc) - cost;
                if accept(params.acceptance, delta, temp, rng) {
                    m.apply(mv);
                    fb += dfb;
                    fc += dfc;
                    was_accepted = true;
                    accepted_count += 1;
                    if delta.abs() > 1e-12 {
                        cost_changed = true;
                    }
                }
            }
            cost = cm.total(fb, fc);
            if params.keep_best && cost < best_cost {
                best_cost = cost;
                best_m.clone_from(&m);
            }
            if let Some(tr) = trace.as_mut() {
                tr.samples.push(TraceSample {
                    iter: moves,
                    temp,
                    f_b_raw: fb,
                    f_c_raw: fc,
                    f_b_norm: cm.balance_term(fb),
                    f_c_norm: cm.comm_term(fc),
                    f_total: cost,
                    accepted: was_accepted,
                });
            }
            moves += 1;
        }
        if cost_changed {
            stable = 0;
        } else {
            stable += 1;
        }
        k += 1;
    }

    let (final_cost, final_m) = if params.keep_best && best_cost < cost {
        (best_cost, best_m)
    } else {
        (cost, m)
    };
    PacketOutcome {
        assignment: final_m.assignments().collect(),
        iterations: k,
        moves,
        accepted: accepted_count,
        final_cost,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::BalanceRange;
    use anneal_graph::TaskId;
    use anneal_topology::ProcId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn packet(levels: Vec<u64>, comm: Vec<Vec<u64>>, procs: usize) -> AnnealingPacket {
        let worst = comm
            .iter()
            .map(|r| r.iter().copied().max().unwrap_or(0))
            .collect();
        AnnealingPacket {
            tasks: (0..levels.len()).map(TaskId::from_index).collect(),
            procs: (0..procs).map(ProcId::from_index).collect(),
            levels,
            comm_cost: comm,
            worst_comm: worst,
            epoch_time: 0,
        }
    }

    #[test]
    fn selects_highest_level_tasks(/* pure balancing, no comm */) {
        // 4 tasks, levels 100, 90, 10, 5; 2 procs; no communication.
        let p = packet(vec![100, 90, 10, 5], vec![vec![0, 0]; 4], 2);
        let cm = CostModel::new(&p, 1.0, 0.0, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(11);
        let out = anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, false);
        let mut chosen: Vec<usize> = out.assignment.iter().map(|&(t, _)| t).collect();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 1], "must select the two highest levels");
    }

    #[test]
    fn avoids_expensive_processors(/* pure communication */) {
        // 2 tasks, 2 procs; task 0 cheap on p0, task 1 cheap on p1.
        let p = packet(vec![50, 50], vec![vec![0, 1000], vec![1000, 0]], 2);
        let cm = CostModel::new(&p, 0.0, 1.0, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(7);
        let out = anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, false);
        let mut map = out.assignment.clone();
        map.sort_unstable();
        assert_eq!(map, vec![(0, 0), (1, 1)]);
        assert!(out.final_cost.abs() < 1e-12);
    }

    #[test]
    fn trade_off_respects_weights() {
        // Task 0: high level but terrible comm on every proc; task 1:
        // low level, free comm. With w_b = 1 task 0 wins; with w_c = 1
        // task 1 wins.
        let p = packet(vec![100, 10], vec![vec![500], vec![0]], 1);
        let mut rng = StdRng::seed_from_u64(3);
        let cm_b = CostModel::new(&p, 1.0, 0.0, BalanceRange::Full);
        let out_b = anneal_packet(&p, &cm_b, &AnnealParams::default(), &mut rng, false);
        assert_eq!(out_b.assignment, vec![(0, 0)]);
        let cm_c = CostModel::new(&p, 0.0, 1.0, BalanceRange::Full);
        let out_c = anneal_packet(&p, &cm_c, &AnnealParams::default(), &mut rng, false);
        assert_eq!(out_c.assignment, vec![(1, 0)]);
    }

    #[test]
    fn saturation_invariant_holds() {
        let p = packet(vec![10, 20, 30, 40, 50], vec![vec![0, 0, 0]; 5], 3);
        let cm = CostModel::new(&p, 0.5, 0.5, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(1);
        let out = anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, false);
        assert_eq!(out.assignment.len(), 3);
        // distinct tasks, distinct procs
        let mut ts: Vec<_> = out.assignment.iter().map(|a| a.0).collect();
        let mut ps: Vec<_> = out.assignment.iter().map(|a| a.1).collect();
        ts.sort_unstable();
        ts.dedup();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ts.len(), 3);
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn fewer_tasks_than_procs() {
        let p = packet(vec![10, 20], vec![vec![0, 5, 9]; 2], 3);
        let cm = CostModel::new(&p, 0.5, 0.5, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(2);
        let out = anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, false);
        assert_eq!(out.assignment.len(), 2);
    }

    #[test]
    fn single_task_single_proc() {
        let p = packet(vec![42], vec![vec![7]], 1);
        let cm = CostModel::new(&p, 0.5, 0.5, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(2);
        let out = anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, false);
        assert_eq!(out.assignment, vec![(0, 0)]);
        // converges via the stable-cost rule well before max_iters
        assert!(out.iterations <= AnnealParams::default().max_iters);
    }

    #[test]
    fn trace_records_iterations() {
        let p = packet(
            vec![100, 90, 10],
            vec![vec![0, 50], vec![50, 0], vec![25, 25]],
            2,
        );
        let cm = CostModel::new(&p, 0.5, 0.5, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(4);
        let out = anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, true);
        let tr = out.trace.unwrap();
        assert_eq!(tr.samples.len() as u64, out.moves);
        // auto moves_per_temp for a 3-task packet is max(8, 2*3) = 8
        assert_eq!(out.moves, out.iterations * 8);
        assert_eq!(tr.candidates, 3);
        assert_eq!(tr.idle, 2);
        // trace totals equal term sums
        for s in &tr.samples {
            assert!((s.f_b_norm + s.f_c_norm - s.f_total).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_by_stability_rule() {
        // One task, one proc: after the first draw the cost can never
        // change, so the run must stop after exactly `stable_iters`
        // additional iterations (plus the initial one).
        let p = packet(vec![42], vec![vec![0]], 1);
        let cm = CostModel::new(&p, 0.5, 0.5, BalanceRange::Full);
        let mut rng = StdRng::seed_from_u64(6);
        let params = AnnealParams {
            stable_iters: 5,
            max_iters: 1000,
            ..AnnealParams::default()
        };
        let out = anneal_packet(&p, &cm, &params, &mut rng, false);
        assert_eq!(out.iterations, 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = packet(
            vec![100, 90, 80, 10],
            vec![vec![0, 9], vec![9, 0], vec![5, 5], vec![1, 8]],
            2,
        );
        let cm = CostModel::new(&p, 0.5, 0.5, BalanceRange::Full);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            anneal_packet(&p, &cm, &AnnealParams::default(), &mut rng, false).assignment
        };
        assert_eq!(run(123), run(123));
    }
}
