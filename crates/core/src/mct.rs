//! A communication-aware list baseline: HLF ranking with
//! minimum-communication-cost placement ("MCT" — minimum cost task
//! placement).
//!
//! The paper's HLF places tasks on *arbitrary* free processors; its SA
//! places them by annealing eq. 6. This scheduler sits between the two:
//! it keeps HLF's deterministic level ranking but places each task on
//! the idle processor with the smallest eq. 4 input-communication
//! estimate (ties toward the lowest processor id). It is the natural
//! greedy you would build once you have the eq. 4 table, and shows how
//! much of SA's gain comes from *placement awareness* versus
//! *stochastic search* (see the ablations).

use anneal_graph::levels::bottom_levels;
use anneal_graph::{TaskId, Work};
use anneal_sim::{EpochContext, OnlineScheduler};
use anneal_topology::ProcId;

/// Highest-level-first ranking with greedy minimum-eq.4 placement.
#[derive(Debug, Default)]
pub struct MctScheduler {
    levels: Option<Vec<Work>>,
}

impl MctScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OnlineScheduler for MctScheduler {
    // lint:allow(panic) reason="ready tasks have placed predecessors; the loop breaks before `free` is empty"
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        let levels = self.levels.get_or_insert_with(|| bottom_levels(ctx.graph));
        let mut ranked: Vec<TaskId> = ctx.ready.to_vec();
        ranked.sort_by_key(|&t| (std::cmp::Reverse(levels[t.index()]), t));
        let mut free: Vec<ProcId> = ctx.idle.to_vec();
        for &t in ranked.iter() {
            if free.is_empty() {
                break;
            }
            // eq. 4 input estimate of placing t on q, over all placed
            // predecessors (all finished: t is ready).
            let cost_on = |q: ProcId| -> u64 {
                ctx.graph
                    .predecessors(t)
                    .iter()
                    .map(|e| {
                        let src = ctx.placement[e.target.index()]
                            .expect("predecessor of ready task is placed");
                        let d = ctx.routes.distance(src, q);
                        ctx.params.eq4_cost(e.weight, d, src == q)
                    })
                    .sum()
            };
            let (bi, _) = free
                .iter()
                .enumerate()
                .map(|(i, &q)| (i, cost_on(q)))
                .min_by_key(|&(i, c)| (c, free[i]))
                .expect("free is non-empty");
            out.push((t, free.swap_remove(bi)));
        }
    }

    fn name(&self) -> &str {
        "hlf-mct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_sim::{simulate, SimConfig};
    use anneal_topology::builders::{linear, paper_architectures};
    use anneal_topology::CommParams;

    #[test]
    fn places_consumer_next_to_producer() {
        // a on some proc; b should land on the same proc (cost 0).
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(us(10.0));
        let b = bld.add_task(us(10.0));
        bld.add_edge(a, b, us(4.0)).unwrap();
        let g = bld.build().unwrap();
        let topo = linear(3);
        let mut s = MctScheduler::new();
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.placement[a.index()], r.placement[b.index()]);
        assert_eq!(r.comm.messages, 0);
        assert_eq!(r.makespan, us(20.0));
    }

    #[test]
    fn beats_plain_hlf_on_comm_heavy_chain() {
        // Three equal-duration lanes whose task *ids* rotate every
        // level: HLF's (level, id) ranking assigns the rotated order to
        // processors in index order, so its placement bounces between
        // processors and pays crossing messages each level; MCT follows
        // the data and keeps every lane local.
        let mut bld = TaskGraphBuilder::new();
        let mut prev: Vec<_> = (0..3).map(|_| bld.add_task(us(10.0))).collect();
        for level in 1..5 {
            let mut next = prev.clone();
            for k in 0..3 {
                // lane (k + level) % 3 receives the k-th id of this level
                next[(k + level) % 3] = bld.add_task(us(10.0));
            }
            for (p, n) in prev.iter().zip(&next) {
                bld.add_edge(*p, *n, us(8.0)).unwrap();
            }
            prev = next;
        }
        let g = bld.build().unwrap();
        let topo = linear(3);
        let mut mct = MctScheduler::new();
        let rm = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut mct,
            &SimConfig::default(),
        )
        .unwrap();
        let mut hlf = crate::HlfScheduler::new();
        let rh = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut hlf,
            &SimConfig::default(),
        )
        .unwrap();
        rm.audit(&g).unwrap();
        assert!(
            rm.makespan < rh.makespan,
            "mct {} vs hlf {}",
            rm.makespan,
            rh.makespan
        );
        // lanes stay fully local
        assert_eq!(rm.comm.messages, 0);
    }

    #[test]
    fn audits_on_paper_grid() {
        let g = anneal_workloads_smoke();
        for topo in paper_architectures() {
            let mut s = MctScheduler::new();
            let r = simulate(
                &g,
                &topo,
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap();
            r.audit(&g).unwrap();
        }
    }

    fn anneal_workloads_smoke() -> anneal_graph::TaskGraph {
        // small diamond-ish graph to avoid a workloads dev-dependency
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(us(5.0));
        let xs: Vec<_> = (0..6).map(|_| bld.add_task(us(25.0))).collect();
        let z = bld.add_task(us(5.0));
        for &x in &xs {
            bld.add_edge(a, x, us(4.0)).unwrap();
            bld.add_edge(x, z, us(4.0)).unwrap();
        }
        bld.build().unwrap()
    }
}
