//! Allocation-regression tests for the fast path and the incremental
//! evaluator.
//!
//! The whole point of [`SimScratch`] and [`FixedEval`]'s reused buffers
//! is that *steady-state* evaluation performs **zero heap allocation**:
//! after a warm-up that grows every buffer to its high-water mark,
//! further evaluations of the same instance must not touch the
//! allocator at all. A perf regression that quietly reintroduces a
//! per-call allocation (a fresh `Vec`, a `format!`, a route rebuild)
//! would survive every correctness test — this binary pins the property
//! with a counting global allocator.
//!
//! The counter tracks `alloc`/`realloc` calls (frees are irrelevant:
//! zero allocations implies zero frees of new memory). The libtest
//! harness runs tests on parallel threads and allocates for its own
//! bookkeeping, so the counter is **thread-scoped**: each test counts
//! only allocations made by its own thread (a `thread_local` flag read
//! by the global allocator), which makes the measured deltas
//! deterministic regardless of test scheduling.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use anneal_core::{SaConfig, SaLane, SaScheduler};
use anneal_graph::generate::{layered_random, LayeredConfig, Range};
use anneal_graph::units::us;
use anneal_graph::{TaskGraph, TaskId};
use anneal_obs::NoopRecorder;
use anneal_sim::{
    simulate_makespan, FixedEval, FixedMapping, GreedyScheduler, SimConfig, SimScratch,
};
use anneal_topology::builders::{hypercube, ring};
use anneal_topology::{CommParams, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

thread_local! {
    /// Allocations made by *this* thread. `const` initializer: no lazy
    /// TLS setup inside the allocator itself.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    // `try_with` tolerates TLS teardown (allocations during thread
    // destruction are simply not counted).
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations made by the calling thread so far.
fn allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

fn sample_graph(seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    layered_random(
        &LayeredConfig {
            layers: 4,
            width: 6,
            edge_prob: 0.4,
            load: Range::new(us(1.0), us(40.0)),
            comm: Range::new(us(0.5), us(8.0)),
        },
        &mut rng,
    )
}

#[test]
fn fast_path_steady_state_allocates_nothing() {
    let g = sample_graph(3);
    let topo = hypercube(3);
    let params = CommParams::paper();
    let cfg = SimConfig::default();
    let mut scratch = SimScratch::new();
    let mapping: Vec<ProcId> = (0..g.num_tasks())
        .map(|i| ProcId::from_index(i % 8))
        .collect();

    // Warm-up: grow every buffer (heap, queues, driver mirrors, route
    // cache) to its high-water mark.
    let mut expect = 0;
    for _ in 0..3 {
        expect = simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch)
            .unwrap();
        let m = simulate_makespan(
            &g,
            &topo,
            &params,
            &mut FixedMapping::new(mapping.clone()),
            &cfg,
            &mut scratch,
        )
        .unwrap();
        assert!(m > 0);
    }

    // FixedMapping::new allocates (it builds the order vec), so build
    // the scheduler outside the measured region and reuse it — replays
    // through the same scheduler object are valid (it is stateless
    // between runs).
    let mut fm = FixedMapping::new(mapping);
    let before = allocations();
    for _ in 0..50 {
        let a = simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch)
            .unwrap();
        assert_eq!(a, expect);
        simulate_makespan(&g, &topo, &params, &mut fm, &cfg, &mut scratch).unwrap();
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state fast-path simulation must not allocate ({delta} allocations in 100 runs)"
    );
}

#[test]
fn fast_path_alternating_instances_allocate_nothing_once_warm() {
    // A worker sweeping cells alternates instances and topologies; once
    // both shapes are warm, switching between them must stay free (the
    // route cache holds both, buffers only ever grow).
    let g1 = sample_graph(5);
    let g2 = sample_graph(11);
    let t1 = hypercube(3);
    let t2 = ring(5);
    let params = CommParams::paper();
    let cfg = SimConfig::default();
    let mut scratch = SimScratch::new();
    for _ in 0..3 {
        simulate_makespan(&g1, &t1, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g2, &t2, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g1, &t2, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g2, &t1, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
    }
    let before = allocations();
    for _ in 0..25 {
        simulate_makespan(&g1, &t1, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g2, &t2, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g1, &t2, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g2, &t1, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "alternating warm instances must not allocate ({delta} allocations in 100 runs)"
    );
}

#[test]
fn observation_with_noop_recorder_allocates_nothing() {
    // The observability layer's core bargain: with the recorder off
    // (`NoopRecorder`), the whole instrumented surface — kernel run
    // stats, route-cache stats, evaluator obs stats, and their
    // `record_into` flushes — adds zero steady-state allocations to
    // the hot path.
    let g = sample_graph(13);
    let n = g.num_tasks();
    let topo = hypercube(3);
    let params = CommParams::paper();
    let cfg = SimConfig::default();
    let mut scratch = SimScratch::new();

    let order: Vec<u64> = (0..n as u64).collect();
    let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order).unwrap();
    let mapping: Vec<ProcId> = (0..n).map(|i| ProcId::from_index(i % 8)).collect();
    ev.reset(&mapping).unwrap();

    // Warm-up: same deterministic move script as the measured region,
    // long enough to grow every buffer to its high-water mark.
    let mut expect = 0;
    let step = |ev: &mut FixedEval<'_>, i: usize| {
        ev.eval_relocate(TaskId::from_index(i % n), ProcId::from_index((i * 7) % 8))
            .unwrap();
        if i.is_multiple_of(3) {
            ev.commit();
        }
    };
    for i in 0..600usize {
        if i.is_multiple_of(10) {
            expect =
                simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch)
                    .unwrap();
        }
        step(&mut ev, i);
    }

    let mut noop = NoopRecorder;
    let before = allocations();
    for i in 0..60usize {
        if i.is_multiple_of(10) {
            let m = simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch)
                .unwrap();
            assert_eq!(m, expect);
            scratch.last_run_stats().record_into(&mut noop);
            scratch.route_cache_stats().record_into(&mut noop);
        }
        step(&mut ev, i);
        ev.obs_stats().record_into(&mut noop);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "observation through NoopRecorder must not allocate \
         ({delta} allocations in 60 observed moves)"
    );
}

#[test]
fn delta_table_sa_lane_steady_state_allocates_nothing() {
    // The delta-table lane's cost tables and acceptance table are
    // built once (first packet / process-wide `OnceLock`) and reused
    // through `SaScratch`'s grow-only buffers: once a scheduler is
    // warm on its instance, `reseed` + re-simulate must not touch the
    // allocator — the property `ScratchPool` reuse in
    // `best_of_restarts` depends on.
    let g1 = sample_graph(9);
    let g2 = sample_graph(15);
    let t1 = hypercube(3);
    let t2 = ring(5);
    let params = CommParams::paper();
    let cfg = SimConfig::default();
    let mut scratch = SimScratch::new();
    let lane_cfg = |seed| {
        SaConfig::default()
            .with_seed(seed)
            .with_lane(SaLane::DeltaTable)
    };
    // One scheduler per instance: `reseed` keeps the per-graph level
    // cache and the lane scratch, both valid for the same instance
    // only.
    let mut s1 = SaScheduler::new(lane_cfg(21));
    let mut s2 = SaScheduler::new(lane_cfg(22));

    let mut e1 = 0;
    let mut e2 = 0;
    for _ in 0..3 {
        s1.reseed(21);
        e1 = simulate_makespan(&g1, &t1, &params, &mut s1, &cfg, &mut scratch).unwrap();
        s2.reseed(22);
        e2 = simulate_makespan(&g2, &t2, &params, &mut s2, &cfg, &mut scratch).unwrap();
    }

    let before = allocations();
    for _ in 0..20 {
        s1.reseed(21);
        let m1 = simulate_makespan(&g1, &t1, &params, &mut s1, &cfg, &mut scratch).unwrap();
        assert_eq!(m1, e1);
        s2.reseed(22);
        let m2 = simulate_makespan(&g2, &t2, &params, &mut s2, &cfg, &mut scratch).unwrap();
        assert_eq!(m2, e2);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warm delta-table SA lane must not allocate ({delta} allocations in 40 runs)"
    );
}

#[test]
fn turbo_sa_lane_steady_state_allocates_nothing() {
    // The turbo lane adds counter-based RNG streams (a fixed-size
    // two-word state in `CounterRng` — draws must stay allocation
    // free) and `f32` cost tables (`SaScratch` grow-only buffers,
    // filled per packet). Once warm, the lossy lane must be exactly as
    // allocation-free as the delta-table lane it replaces in the fast
    // portfolio.
    let g1 = sample_graph(9);
    let g2 = sample_graph(15);
    let t1 = hypercube(3);
    let t2 = ring(5);
    let params = CommParams::paper();
    let cfg = SimConfig::default();
    let mut scratch = SimScratch::new();
    let lane_cfg = |seed| SaConfig::default().with_seed(seed).with_lane(SaLane::Turbo);
    let mut s1 = SaScheduler::new(lane_cfg(21));
    let mut s2 = SaScheduler::new(lane_cfg(22));

    let mut e1 = 0;
    let mut e2 = 0;
    for _ in 0..3 {
        s1.reseed(21);
        e1 = simulate_makespan(&g1, &t1, &params, &mut s1, &cfg, &mut scratch).unwrap();
        s2.reseed(22);
        e2 = simulate_makespan(&g2, &t2, &params, &mut s2, &cfg, &mut scratch).unwrap();
    }

    let before = allocations();
    for _ in 0..20 {
        s1.reseed(21);
        let m1 = simulate_makespan(&g1, &t1, &params, &mut s1, &cfg, &mut scratch).unwrap();
        assert_eq!(m1, e1);
        s2.reseed(22);
        let m2 = simulate_makespan(&g2, &t2, &params, &mut s2, &cfg, &mut scratch).unwrap();
        assert_eq!(m2, e2);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warm turbo SA lane must not allocate ({delta} allocations in 40 runs)"
    );
}

#[test]
fn incremental_move_evaluation_allocates_nothing_after_warmup() {
    let g = sample_graph(7);
    let n = g.num_tasks();
    let topo = hypercube(3);
    let params = CommParams::paper();
    let cfg = SimConfig::default();
    let order: Vec<u64> = (0..n as u64).collect();
    let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order).unwrap();
    let mapping: Vec<ProcId> = (0..n).map(|i| ProcId::from_index(i % 8)).collect();
    ev.reset(&mapping).unwrap();

    // Warm-up: a long committed move chain grows the snapshot pool, the
    // per-epoch snapshots and every queue to their high-water marks.
    let mut rng = StdRng::seed_from_u64(17);
    let mut warm_moves = Vec::new();
    for _ in 0..1500 {
        let relocate = rng.gen_bool(0.5);
        let a = rng.gen_range(0..n);
        let b = if relocate {
            rng.gen_range(0..8)
        } else {
            rng.gen_range(0..n)
        };
        let commit = rng.gen_bool(0.4);
        warm_moves.push((relocate, a, b, commit));
    }
    let apply = |ev: &mut FixedEval<'_>, script: &[(bool, usize, usize, bool)]| {
        for &(relocate, a, b, commit) in script {
            if relocate {
                ev.eval_relocate(TaskId::from_index(a), ProcId::from_index(b))
                    .unwrap();
            } else {
                ev.eval_swap(TaskId::from_index(a), TaskId::from_index(b))
                    .unwrap();
            }
            if commit {
                ev.commit();
            }
        }
    };
    apply(&mut ev, &warm_moves);

    // Measured region: replay the same move mix (same distribution of
    // divergence points, commits, rebuilds) on the warm evaluator.
    let measured = &warm_moves[..300];
    let before = allocations();
    apply(&mut ev, measured);
    let delta = allocations() - before;
    assert_eq!(
        delta,
        0,
        "steady-state FixedEval move evaluation must not allocate \
         ({delta} allocations in {} moves)",
        measured.len()
    );
}
