//! Property-based tests for the simulation engine: fundamental laws that
//! must hold for any graph, topology and (valid) scheduler.

use anneal_graph::critical_path::critical_path_length;
use anneal_graph::generate::{gnp_dag, layered_random, LayeredConfig, Range};
use anneal_graph::units::us;
use anneal_graph::TaskGraph;
use anneal_sim::{
    simulate, simulate_makespan, FixedMapping, GreedyScheduler, SimConfig, SimScratch,
};
use anneal_topology::builders::*;
use anneal_topology::{CommParams, ProcId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 1usize..30, 0.0f64..0.9, prop::bool::ANY).prop_map(|(seed, n, p, layered)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let load = Range::new(us(1.0), us(60.0));
        let comm = Range::new(0, us(10.0));
        if layered {
            layered_random(
                &LayeredConfig {
                    layers: 1 + n % 5,
                    width: 1 + n / 5,
                    edge_prob: p,
                    load,
                    comm,
                },
                &mut rng,
            )
        } else {
            gnp_dag(n, p, load, comm, &mut rng)
        }
    })
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(hypercube(3)),
        Just(bus(8)),
        Just(ring(9)),
        Just(ring(4)),
        Just(star(5)),
        Just(linear(3)),
        Just(shared_bus(6)),
        Just(mesh(3, 2)),
        Just(linear(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lower bounds: makespan >= critical path and >= total work / P,
    /// and the full audit passes (precedence, conservation, exclusivity).
    #[test]
    fn makespan_bounds_and_audit(g in arb_graph(), topo in arb_topology(), comm in prop::bool::ANY) {
        let params = if comm { CommParams::paper() } else { CommParams::zero() };
        let cfg = SimConfig { comm_enabled: comm, ..SimConfig::default() };
        let r = simulate(&g, &topo, &params, &mut GreedyScheduler, &cfg).unwrap();
        prop_assert!(r.makespan >= critical_path_length(&g));
        let work_bound = g.total_work() / topo.num_procs() as u64;
        prop_assert!(r.makespan >= work_bound);
        r.audit(&g).map_err(TestCaseError::fail)?;
        // All work conserved.
        prop_assert_eq!(r.compute_ns(), g.total_work());
        // Utilization sane.
        let u = r.utilization();
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }

    /// Without communication, makespan on one processor equals T1 and
    /// speedup equals 1.
    #[test]
    fn single_proc_serializes(g in arb_graph()) {
        let cfg = SimConfig { comm_enabled: false, ..SimConfig::default() };
        let r = simulate(&g, &linear(1), &CommParams::zero(), &mut GreedyScheduler, &cfg).unwrap();
        prop_assert_eq!(r.makespan, g.total_work());
        prop_assert!((r.speedup - 1.0).abs() < 1e-12);
    }

    /// Turning communication on can only slow execution down (with the
    /// same deterministic scheduler, the only change is added latency).
    /// Note: this is NOT true for arbitrary schedulers (Graham
    /// anomalies), but greedy-by-id keeps assignment order stable here
    /// because epochs see the same ready sets in the free case... which
    /// anomalies can break; so we only assert a weak sanity bound:
    /// with-comm makespan >= no-comm critical path.
    #[test]
    fn comm_cannot_beat_free_lower_bound(g in arb_graph(), topo in arb_topology()) {
        let cfg_on = SimConfig { comm_enabled: true, ..SimConfig::default() };
        let r_on = simulate(&g, &topo, &CommParams::paper(), &mut GreedyScheduler, &cfg_on).unwrap();
        prop_assert!(r_on.makespan >= critical_path_length(&g));
        // comm stats consistent
        prop_assert!(r_on.comm.hops >= r_on.comm.messages);
        if topo.num_procs() == 1 {
            prop_assert_eq!(r_on.comm.messages, 0);
        }
    }

    /// Packet accounting: every task is assigned exactly once.
    #[test]
    fn packets_assign_every_task(g in arb_graph(), topo in arb_topology()) {
        let cfg = SimConfig { comm_enabled: true, ..SimConfig::default() };
        let r = simulate(&g, &topo, &CommParams::paper(), &mut GreedyScheduler, &cfg).unwrap();
        prop_assert_eq!(r.packets.assigned, g.num_tasks() as u64);
        prop_assert!(r.packets.packets >= 1);
        prop_assert!(r.packets.total_candidates >= r.packets.assigned);
    }

    /// Start times respect readiness even with messages in flight.
    #[test]
    fn starts_after_preds_with_comm(g in arb_graph(), topo in arb_topology()) {
        let cfg = SimConfig { comm_enabled: true, ..SimConfig::default() };
        let r = simulate(&g, &topo, &CommParams::paper(), &mut GreedyScheduler, &cfg).unwrap();
        for (a, b, _) in g.edges() {
            prop_assert!(r.start[b.index()] >= r.finish[a.index()]);
            // with comm enabled and distinct processors, strictly later
            // unless the message machinery was free (zero overheads).
            if r.placement[a.index()] != r.placement[b.index()] {
                prop_assert!(r.start[b.index()] >= r.finish[a.index()] + CommParams::paper().sigma);
            }
        }
    }

    /// The fast path ([`simulate_makespan`]) is bit-identical to the
    /// general engine for a stateless online scheduler, with one
    /// scratch reused across every case (graphs and topologies of
    /// wildly different shapes — exactly how the arena workers use it).
    #[test]
    fn fast_path_matches_engine_greedy(g in arb_graph(), topo in arb_topology(), comm in prop::bool::ANY) {
        let params = if comm { CommParams::paper() } else { CommParams::zero() };
        let cfg = SimConfig { comm_enabled: comm, ..SimConfig::default() };
        let slow = simulate(&g, &topo, &params, &mut GreedyScheduler, &cfg).unwrap().makespan;
        let mut scratch = SimScratch::new();
        let fast = simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        prop_assert_eq!(fast, slow);
        // Re-running on the now-warm scratch changes nothing.
        let again = simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        prop_assert_eq!(again, slow);
    }

    /// Fast path vs engine on random fixed mappings with random
    /// dispatch orders — the preemption- and contention-heavy case the
    /// incremental evaluator also exercises, but through the public
    /// online-scheduler surface.
    #[test]
    fn fast_path_matches_engine_fixed_mapping(g in arb_graph(), topo in arb_topology(), seed in any::<u64>()) {
        let np = topo.num_procs();
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping: Vec<ProcId> = (0..g.num_tasks()).map(|_| ProcId::from_index(rng.gen_range(0..np))).collect();
        let order: Vec<u64> = (0..g.num_tasks()).map(|_| rng.gen_range(0..8)).collect();
        let params = CommParams::paper();
        let cfg = SimConfig { comm_enabled: true, ..SimConfig::default() };
        let slow = simulate(
            &g, &topo, &params,
            &mut FixedMapping::new(mapping.clone()).with_order(order.clone()),
            &cfg,
        ).unwrap().makespan;
        let mut scratch = SimScratch::new();
        let fast = simulate_makespan(
            &g, &topo, &params,
            &mut FixedMapping::new(mapping).with_order(order),
            &cfg, &mut scratch,
        ).unwrap();
        prop_assert_eq!(fast, slow);
    }
}
