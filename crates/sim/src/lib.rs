//! # anneal-sim
//!
//! Discrete-event multicomputer simulator for the `annealsched` project
//! (reproduction of D'Hollander & Devis, ICPP 1991).
//!
//! The paper evaluates schedules with "a simulation program … which
//! accurately records the execution and interprocessor communication".
//! This crate rebuilds that simulator:
//!
//! * **Epoch-driven online scheduling** — the first scheduling epoch is
//!   at time 0 and further epochs occur whenever processors become idle;
//!   at each epoch the engine hands the ready tasks and idle processors
//!   to an [`OnlineScheduler`] (the SA and HLF schedulers live in
//!   `anneal-core`).
//! * **Message lifecycle** — a message from a finished predecessor to a
//!   newly placed task pays the send overhead σ on the source processor,
//!   occupies each link on the route for `w_ij` (one message per channel
//!   at a time, FIFO), pays the routing overhead τ on every intermediate
//!   processor and the receive overhead τ at the destination.
//! * **Preemption** — σ/τ overheads run on the owning processor and
//!   preempt its compute task ("incoming messages preempt an active
//!   processor"); remaining compute work resumes afterwards.
//! * **Gantt recording** — compute/send/receive/route spans per
//!   processor (the paper's Figure 2), plus utilization, communication
//!   and annealing-packet statistics.
//!
//! All times are integer nanoseconds ([`SimTime`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod eval;
pub mod fastpath;
pub mod gantt;
pub mod result;
pub mod scheduler;

pub use engine::{simulate, SimConfig, SimError};
pub use eval::{EvalObsStats, FixedEval};
pub use fastpath::{simulate_makespan, KernelRunStats, RouteCacheStats, SimScratch};
pub use gantt::{Gantt, Span, SpanKind};
pub use result::{CommStats, PacketStats, RunObs, SimResult};
pub use scheduler::{EpochContext, FixedMapping, GreedyScheduler, OnlineScheduler};

/// Simulated time in nanoseconds since the start of execution.
pub type SimTime = u64;
