//! Fast makespan evaluation of fixed mappings, with incremental moves.
//!
//! Whole-graph annealing (`anneal-core`'s `static_sa`) and the arena's
//! adversarial search both evaluate *thousands* of candidate mappings,
//! and until this module existed every candidate paid for a complete
//! [`simulate`](crate::simulate) call: a fresh route table, a fresh
//! event queue, Gantt span recording, statistics, and a fully allocated
//! [`SimResult`](crate::SimResult) — all to read one number, the
//! makespan.
//!
//! [`FixedEval`] is a specialized re-implementation of the
//! discrete-event engine for the [`FixedMapping`](crate::FixedMapping)
//! scheduler that produces **bit-identical makespans** (same events,
//! same tie-breaking, same σ/τ preemption and channel FIFO contention)
//! while doing none of that bookkeeping:
//!
//! * routes and per-hop channel ids are precomputed once per instance;
//! * every buffer (event heap, processor and channel state, ready set)
//!   is reused across evaluations — steady-state evaluation performs no
//!   allocation;
//! * no Gantt spans, statistics or result vectors are built.
//!
//! On top of the specialized kernel sits the **incremental** part:
//! after [`FixedEval::eval_relocate`] or [`FixedEval::eval_swap`], only
//! the *affected cone* of the move is recomputed. Because messages
//! preempt third-party processors (routing τ) and contend for channels
//! (FIFO), the structurally affected cone of a move — the moved task's
//! dependents plus the two processors' queues — is not sound for this
//! engine: a retimed message can displace an unrelated message on a
//! shared link. The cone that *is* sound is **temporal**, and the
//! evaluator computes it exactly:
//!
//! 1. a task's mapping is first *read* when the task becomes ready, so
//!    nothing can diverge before the moved tasks' ready times;
//! 2. from there, the only reads are dispatch decisions, and a move
//!    touches exactly two processors' waiting queues — so the first
//!    epoch of the committed baseline at which either processor would
//!    pick a different task under the candidate mapping is the exact
//!    divergence point (if no epoch decides differently, the candidate
//!    provably replays the baseline and no simulation runs at all).
//!
//! The evaluator snapshots the engine state at every scheduling epoch
//! of the committed baseline, resumes the candidate at the divergence
//! epoch, and replays only the suffix. [`FixedEval::commit`] is *lazy*:
//! the accepted candidate shares the baseline timeline up to its resume
//! point, so commit just truncates the snapshot list there; the dropped
//! tail is re-recorded only when repeated commits have eroded it past
//! half a run (until then, candidates conservatively resume at the
//! boundary — no worse than an average move).
//!
//! Two further departures from the engine's event plumbing keep the
//! per-event cost low without changing any outcome: events live in a
//! 4-ary heap of packed 16-byte `(time, seq|kind|arg)` entries, and
//! task completions never enter the heap at all — each processor holds
//! a completion *register* drawing sequence numbers from the same
//! counter, and the main loop pops the global `(time, seq)` minimum
//! across heap and registers, which is provably the order one merged
//! heap would produce (a preemption disarms the register instead of
//! leaving a stale event behind).
//!
//! The equivalence contract — `FixedEval` agrees with a from-scratch
//! DES replay on every mapping, including after arbitrarily long
//! relocate/swap/commit chains — is enforced by unit tests here and
//! the proptest suite in `anneal-core/tests/evaluator.rs`.

use std::collections::VecDeque;

use anneal_graph::{TaskGraph, TaskId};
use anneal_topology::{CommParams, ProcId, RouteTable, Topology};

use crate::engine::{link_occupancy_time, SimConfig, SimError};
use crate::SimTime;

const NONE: u32 = u32::MAX;
const NOT_RUNNING: SimTime = SimTime::MAX;

/// A candidate move, as the divergence scan sees it.
#[derive(Debug, Clone, Copy)]
enum Mv {
    /// Task `t` relocates from processor `from` to `to`.
    Relocate { t: u32, from: u32, to: u32 },
    /// Tasks `a` (on `pa`) and `b` (on `pb`) exchange processors.
    Swap { a: u32, b: u32, pa: u32, pb: u32 },
}

/// A heap entry is `(time, rest)` with
/// `rest = seq << 32 | kind << 30 | arg`: 16 bytes total, ordered by
/// `(time, seq)` since `seq` occupies the high bits — so pops replay
/// the engine's insertion-order tie-breaking exactly. `arg` is a
/// processor index for `TaskDone`/`OverheadDone` and a message (edge)
/// id for `TransferDone`; both fit 30 bits by the assertions in
/// [`FixedEval::new`]. `seq` is a per-run push counter; it cannot wrap
/// because a run processes at most `max_events` (and pushes at most a
/// small multiple of that before erroring).
type HeapEv = (SimTime, u64);

const KIND_OVERHEAD_DONE: u64 = 1;
const KIND_TRANSFER_DONE: u64 = 2;
const ARG_MASK: u64 = (1 << 30) - 1;

#[inline]
fn pack(seq: u64, kind: u64, arg: u32) -> u64 {
    debug_assert!(seq < (1 << 32) && (arg as u64) <= ARG_MASK);
    seq << 32 | kind << 30 | arg as u64
}

/// A 4-ary min-heap over `(time, rest)` pairs.
///
/// The event queue is the hottest structure in the evaluator (every
/// simulated event is one push and one pop); a 4-ary layout halves the
/// tree depth of the resident ~10–40 events and keeps each node's
/// children in one cache line, which measures materially faster than
/// `std::collections::BinaryHeap` here. Ordering is the total order on
/// `(time, seq)` (seq lives in the high bits of `rest`), so pops
/// reproduce the engine's insertion-order tie-breaking exactly.
#[derive(Debug, Default)]
struct EventHeap {
    v: Vec<HeapEv>,
}

impl EventHeap {
    fn clear(&mut self) {
        self.v.clear();
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        self.v.first().map(|e| e.0)
    }

    #[inline]
    fn peek(&self) -> Option<&HeapEv> {
        self.v.first()
    }

    fn iter(&self) -> std::slice::Iter<'_, HeapEv> {
        self.v.iter()
    }

    #[inline]
    fn push(&mut self, x: HeapEv) {
        let mut i = self.v.len();
        self.v.push(x);
        while i > 0 {
            let parent = (i - 1) >> 2;
            if self.v[parent] <= x {
                break;
            }
            self.v[i] = self.v[parent];
            i = parent;
        }
        self.v[i] = x;
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapEv> {
        let len = self.v.len();
        if len == 0 {
            return None;
        }
        let top = self.v[0];
        let x = self.v[len - 1];
        self.v.truncate(len - 1);
        let len = len - 1;
        if len > 0 {
            let mut i = 0;
            loop {
                let first = (i << 2) + 1;
                if first >= len {
                    break;
                }
                let last = (first + 4).min(len);
                let mut m = first;
                for c in first + 1..last {
                    if self.v[c] < self.v[m] {
                        m = c;
                    }
                }
                if self.v[m] >= x {
                    break;
                }
                self.v[i] = self.v[m];
                i = m;
            }
            self.v[i] = x;
        }
        Some(top)
    }
}

/// σ/τ overhead kinds (send, intermediate route, destination receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OhKind {
    Send,
    Route,
    Receive,
}

#[derive(Debug, Clone, Copy)]
struct Oh {
    kind: OhKind,
    dur: SimTime,
    msg: u32,
}

/// Mutable per-processor state (the engine's `Proc`, minus statistics).
///
/// `Clone` is hand-written because snapshots copy these thousands of
/// times per annealing chain: the derived impl's default `clone_from`
/// would allocate fresh `VecDeque`s on every copy, while this one
/// reuses the destination's capacity.
#[derive(Debug, Default)]
struct ProcState {
    assigned: u32,
    task: u32,
    remaining: SimTime,
    running_since: SimTime,
    cur_oh: Option<Oh>,
    incoming: VecDeque<Oh>,
    sends: VecDeque<Oh>,
    /// The compute-completion *register*: when a task is running, the
    /// time it will finish (`NOT_RUNNING` when idle or preempted) and
    /// the sequence number drawn when it was armed. Task completions
    /// never enter the event heap — the main loop merges the heap with
    /// these registers by `(time, seq)`, which yields exactly the order
    /// a heap-resident `TaskDone` would have had (the register draws
    /// its seq from the same counter a push would), while a preemption
    /// simply disarms the register instead of leaving a stale event to
    /// pop. `OverheadDone` needs no counterpart because nothing can
    /// preempt a running overhead (`pump` is a no-op while `cur_oh` is
    /// occupied), so overhead timers are never stale.
    done_at: SimTime,
    done_seq: u64,
}

impl Clone for ProcState {
    fn clone(&self) -> Self {
        let mut out = ProcState::default();
        out.clone_from(self);
        out
    }

    fn clone_from(&mut self, src: &Self) {
        self.assigned = src.assigned;
        self.task = src.task;
        self.remaining = src.remaining;
        self.running_since = src.running_since;
        self.cur_oh = src.cur_oh;
        self.incoming.clear();
        self.incoming.extend(src.incoming.iter().copied());
        self.sends.clear();
        self.sends.extend(src.sends.iter().copied());
        self.done_at = src.done_at;
        self.done_seq = src.done_seq;
    }
}

impl ProcState {
    fn reset(&mut self) {
        self.assigned = NONE;
        self.task = NONE;
        self.remaining = 0;
        self.running_since = NOT_RUNNING;
        self.cur_oh = None;
        self.incoming.clear();
        self.sends.clear();
        self.done_at = NOT_RUNNING;
        self.done_seq = 0;
    }
}

/// Channel state; `Clone` is hand-written for the same
/// capacity-reusing reason as [`ProcState`].
#[derive(Debug, Default)]
struct ChanState {
    busy: bool,
    queue: VecDeque<u32>,
}

impl Clone for ChanState {
    fn clone(&self) -> Self {
        let mut out = ChanState::default();
        out.clone_from(self);
        out
    }

    fn clone_from(&mut self, src: &Self) {
        self.busy = src.busy;
        self.queue.clear();
        self.queue.extend(src.queue.iter().copied());
    }
}

/// Message state, addressed by the *predecessor-edge id* of the edge it
/// carries (`pred_base[task] + k` for the task's `k`-th incoming edge).
/// Edge ids are stable across runs — unlike creation-order ids — so a
/// rejected candidate's messages can never corrupt slots that baseline
/// snapshots still reference: every slot a snapshot's in-flight set
/// names is rewritten from the snapshot itself on restore, and every
/// other slot is rewritten at assignment before it is read.
#[derive(Debug, Clone, Copy, Default)]
struct MsgMeta {
    dest_task: u32,
    src: u32,
    dest: u32,
    weight: SimTime,
}

/// Complete engine state at one scheduling epoch (taken *before* the
/// epoch's dispatch decisions run). Restoring a snapshot and re-running
/// reproduces the original suffix event for event.
#[derive(Debug, Clone, Default)]
struct Snapshot {
    now: SimTime,
    seq: u64,
    events: u64,
    heap: Vec<HeapEv>,
    procs: Vec<ProcState>,
    channels: Vec<ChanState>,
    /// In-flight messages as `(edge id, meta, hop)`.
    live_msgs: Vec<(u32, MsgMeta, u32)>,
    placement: Vec<u32>,
    unfinished: Vec<u32>,
    pending: Vec<u32>,
    ready: Vec<u32>,
    finished: u32,
    max_finish: SimTime,
    /// The dispatch decisions the epoch at this snapshot made
    /// (`(task, proc)` pairs, one per dispatching processor) — filled
    /// in right after the epoch runs. The divergence scan reads these
    /// instead of recomputing queue minima: a candidate mapping
    /// diverges at this epoch iff it changes one of the two affected
    /// processors' picks, which is decidable from the recorded pick
    /// plus one `(order, id)` comparison.
    decisions: Vec<(u32, u32)>,
}

/// Incremental fixed-mapping makespan evaluator.
///
/// Create one per `(graph, topology, params, config, dispatch order)`
/// instance, establish a baseline with [`FixedEval::reset`], then probe
/// single-task moves with [`FixedEval::eval_relocate`] /
/// [`FixedEval::eval_swap`] and adopt accepted candidates with
/// [`FixedEval::commit`]. Every makespan returned is bit-identical to
/// `simulate(..)` with `FixedMapping::new(mapping).with_order(order)`.
#[derive(Debug)]
pub struct FixedEval<'a> {
    g: &'a TaskGraph,
    num_procs: usize,
    params: CommParams,
    comm_enabled: bool,
    max_events: u64,
    order: Vec<u64>,
    // Flattened all-pairs routes: for pair `s*P + d`, `route_procs`
    // holds the full hop chain (endpoints included) and `route_chans`
    // the channel of each hop.
    proc_off: Vec<u32>,
    chan_off: Vec<u32>,
    route_procs: Vec<u32>,
    route_chans: Vec<u32>,
    /// `pred_base[t]` = first predecessor-edge id of task `t` (edge ids
    /// number the incoming edges of all tasks consecutively).
    pred_base: Vec<u32>,

    // Committed baseline.
    base_mapping: Vec<ProcId>,
    base_makespan: SimTime,
    base_ready_at: Vec<SimTime>,
    base_snaps: Vec<Snapshot>,
    has_base: bool,
    /// `true` when `base_snaps` covers the baseline's whole run. A lazy
    /// commit truncates the timeline at the accepted candidate's resume
    /// point (the shared prefix stays valid); the missing tail is only
    /// re-recorded when it has eroded past half of `epochs_hint`.
    timeline_complete: bool,
    /// Epoch count of the last complete timeline (rebuild heuristic).
    epochs_hint: usize,

    // Last evaluated candidate.
    cand_mapping: Vec<ProcId>,
    cand_makespan: SimTime,
    cand_resume: usize,
    /// The candidate provably replayed the baseline trajectory (its
    /// mapping dispatches identically), so commit has no suffix to
    /// adopt.
    cand_is_noop: bool,
    has_candidate: bool,

    // Reusable run scratch (the live engine state of whichever run is
    // in progress).
    run_mapping: Vec<ProcId>,
    now: SimTime,
    heap: EventHeap,
    seq: u64,
    events: u64,
    epoch_pending: bool,
    procs: Vec<ProcState>,
    channels: Vec<ChanState>,
    msgs: Vec<MsgMeta>,
    msg_hop: Vec<u32>,
    /// Edge ids of messages currently in flight, plus each live edge's
    /// position in that list (`NONE` when not live). Only used to bound
    /// what snapshots must capture.
    live: Vec<u32>,
    live_pos: Vec<u32>,
    placement: Vec<u32>,
    unfinished: Vec<u32>,
    pending: Vec<u32>,
    ready: Vec<u32>,
    /// `waiting[p]` = ready tasks mapped to processor `p` under the
    /// current run's mapping (unordered; dispatch selects the minimum
    /// by `(order, id)`). Derived state — rebuilt from `ready` on
    /// restore — so snapshots don't store it.
    waiting: Vec<Vec<u32>>,
    finished: u32,
    max_finish: SimTime,
    ready_at: Vec<SimTime>,
    assign_buf: Vec<(u32, u32)>,
    /// Cached minimum over the per-proc completion registers as
    /// `(done_at, done_seq, proc)`; `None` = no register armed. Marked
    /// stale (`reg_cache_valid = false`) whenever the cached processor
    /// disarms.
    reg_cache: Option<(SimTime, u64, u32)>,
    reg_cache_valid: bool,
    snap_pool: Vec<Snapshot>,
    evaluations: u64,
}

impl<'a> FixedEval<'a> {
    /// Builds an evaluator for one instance. `order` is the dispatch
    /// priority per task (lower dispatches first, ties by task id) —
    /// exactly [`FixedMapping::with_order`](crate::FixedMapping).
    ///
    /// Errors if the topology is disconnected.
    ///
    /// # Panics
    ///
    /// Panics when `order.len() != g.num_tasks()`.
    pub fn new(
        g: &'a TaskGraph,
        topo: &Topology,
        params: &CommParams,
        cfg: &SimConfig,
        order: Vec<u64>,
    ) -> Result<Self, SimError> {
        assert_eq!(order.len(), g.num_tasks(), "order must cover every task");
        let routes = RouteTable::build(topo).map_err(|e| SimError::Disconnected(e.to_string()))?;
        let np = topo.num_procs();
        let mut proc_off = Vec::with_capacity(np * np + 1);
        let mut chan_off = Vec::with_capacity(np * np + 1);
        let mut route_procs = Vec::new();
        let mut route_chans = Vec::new();
        proc_off.push(0);
        chan_off.push(0);
        for s in 0..np {
            for d in 0..np {
                let path = routes.route(ProcId::from_index(s), ProcId::from_index(d));
                for w in path.windows(2) {
                    let ch = topo
                        .channel_of(w[0], w[1])
                        .expect("route hops are adjacent");
                    route_chans.push(ch.0);
                }
                route_procs.extend(path.iter().map(|p| p.raw()));
                proc_off.push(route_procs.len() as u32);
                chan_off.push(route_chans.len() as u32);
            }
        }
        let n = g.num_tasks();
        let mut pred_base = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for t in g.tasks() {
            pred_base.push(acc);
            acc += g.in_degree(t) as u32;
        }
        pred_base.push(acc);
        let num_pred_edges = acc as usize;
        Ok(FixedEval {
            g,
            num_procs: np,
            params: *params,
            comm_enabled: cfg.comm_enabled,
            max_events: cfg.max_events,
            order,
            proc_off,
            chan_off,
            route_procs,
            route_chans,
            pred_base,
            base_mapping: Vec::new(),
            base_makespan: 0,
            base_ready_at: vec![0; n],
            base_snaps: Vec::new(),
            has_base: false,
            timeline_complete: false,
            epochs_hint: 0,
            cand_mapping: Vec::new(),
            cand_makespan: 0,
            cand_resume: 0,
            cand_is_noop: false,
            has_candidate: false,
            run_mapping: Vec::new(),
            now: 0,
            heap: EventHeap::default(),
            seq: 0,
            events: 0,
            epoch_pending: true,
            procs: (0..np).map(|_| ProcState::default()).collect(),
            channels: vec![ChanState::default(); topo.num_channels()],
            msgs: vec![MsgMeta::default(); num_pred_edges],
            msg_hop: vec![0; num_pred_edges],
            live: Vec::new(),
            live_pos: vec![NONE; num_pred_edges],
            placement: vec![NONE; n],
            unfinished: vec![0; n],
            pending: vec![0; n],
            ready: Vec::new(),
            waiting: vec![Vec::new(); np],
            finished: 0,
            max_finish: 0,
            ready_at: vec![0; n],
            assign_buf: Vec::new(),
            reg_cache: None,
            reg_cache_valid: false,
            snap_pool: Vec::new(),
            evaluations: 0,
        })
    }

    /// The committed baseline mapping.
    ///
    /// # Panics
    ///
    /// Panics before the first successful [`FixedEval::reset`].
    pub fn mapping(&self) -> &[ProcId] {
        assert!(self.has_base, "no baseline: call reset() first");
        &self.base_mapping
    }

    /// The committed baseline makespan.
    ///
    /// # Panics
    ///
    /// Panics before the first successful [`FixedEval::reset`].
    pub fn makespan(&self) -> SimTime {
        assert!(self.has_base, "no baseline: call reset() first");
        self.base_makespan
    }

    /// Candidate evaluations performed (resets + moves).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Establishes `mapping` as the committed baseline by a full run,
    /// returning its makespan.
    pub fn reset(&mut self, mapping: &[ProcId]) -> Result<SimTime, SimError> {
        self.check_mapping(mapping)?;
        self.has_base = false;
        self.has_candidate = false;
        self.run_mapping.clear();
        self.run_mapping.extend_from_slice(mapping);
        self.snap_pool.append(&mut self.base_snaps);
        self.init_state();
        let makespan = self.run(true)?;
        self.evaluations += 1;
        self.base_mapping.clone_from(&self.run_mapping);
        self.base_makespan = makespan;
        self.base_ready_at.clone_from(&self.ready_at);
        self.has_base = true;
        self.timeline_complete = true;
        self.epochs_hint = self.base_snaps.len();
        Ok(makespan)
    }

    /// Makespan of the baseline with `task` relocated to `to`. The
    /// baseline itself is unchanged until [`FixedEval::commit`].
    ///
    /// # Panics
    ///
    /// Panics without a baseline or when `task`/`to` are out of range.
    pub fn eval_relocate(&mut self, task: TaskId, to: ProcId) -> Result<SimTime, SimError> {
        assert!(self.has_base, "no baseline: call reset() first");
        assert!(to.index() < self.num_procs, "{to} out of range");
        self.maybe_rebuild();
        self.cand_mapping.clone_from(&self.base_mapping);
        let from = self.cand_mapping[task.index()];
        self.cand_mapping[task.index()] = to;
        let dirty = self.dirty_time();
        let bound = self.effective_bound(task.index(), dirty);
        let mv = Mv::Relocate {
            t: task.index() as u32,
            from: from.index() as u32,
            to: to.index() as u32,
        };
        self.eval_candidate(bound, mv)
    }

    /// Makespan of the baseline with tasks `a` and `b` exchanging
    /// processors. The baseline is unchanged until [`FixedEval::commit`].
    ///
    /// # Panics
    ///
    /// Panics without a baseline or when `a`/`b` are out of range.
    pub fn eval_swap(&mut self, a: TaskId, b: TaskId) -> Result<SimTime, SimError> {
        assert!(self.has_base, "no baseline: call reset() first");
        self.maybe_rebuild();
        self.cand_mapping.clone_from(&self.base_mapping);
        let (pa, pb) = (self.cand_mapping[a.index()], self.cand_mapping[b.index()]);
        self.cand_mapping.swap(a.index(), b.index());
        let dirty = self.dirty_time();
        let bound = self
            .effective_bound(a.index(), dirty)
            .min(self.effective_bound(b.index(), dirty));
        let mv = Mv::Swap {
            a: a.index() as u32,
            b: b.index() as u32,
            pa: pa.index() as u32,
            pb: pb.index() as u32,
        };
        self.eval_candidate(bound, mv)
    }

    /// Adopts the most recently evaluated candidate as the committed
    /// baseline. O(1) apart from bookkeeping: the candidate shares the
    /// baseline's timeline up to its resume point, so the snapshot tail
    /// is dropped and re-recorded lazily once it has eroded enough to
    /// matter.
    ///
    /// # Panics
    ///
    /// Panics when no candidate evaluation succeeded since the last
    /// `reset`/`commit`.
    pub fn commit(&mut self) {
        assert!(self.has_candidate, "no candidate to commit");
        self.has_candidate = false;
        if self.cand_is_noop {
            // The candidate's trajectory is the baseline's; nothing in
            // the timeline changes (and the mappings are equal).
            debug_assert_eq!(self.base_mapping, self.cand_mapping);
            return;
        }
        // Lazy commit: the candidate shares the baseline's trajectory
        // strictly before its resume epoch, so every snapshot up to and
        // including the resume point (a pre-epoch state) is already the
        // new baseline's. The tail is simply dropped; `base_ready_at`
        // keeps stale entries, guarded by the dirty-boundary rule in
        // `effective_bound`, and `rebuild_timeline` re-records the tail
        // once it has eroded enough to matter.
        self.base_mapping.clone_from(&self.cand_mapping);
        self.base_makespan = self.cand_makespan;
        self.snap_pool
            .extend(self.base_snaps.drain(self.cand_resume + 1..));
        self.timeline_complete = false;
    }

    /// The scan lower bound for a moved task: its baseline ready time
    /// when that value is provably still current, else the dirty
    /// boundary. A stale entry `< dirty_time` lies in the shared prefix
    /// of every baseline since it was written, so it is exact; any
    /// other value could describe a dropped tail, and the conservative
    /// answer is the boundary itself.
    fn effective_bound(&self, task: usize, dirty_time: SimTime) -> SimTime {
        let stale = self.base_ready_at[task];
        if self.timeline_complete || stale < dirty_time {
            stale
        } else {
            dirty_time
        }
    }

    /// Time of the last valid snapshot — the boundary beyond which the
    /// lazily committed timeline has been dropped.
    fn dirty_time(&self) -> SimTime {
        self.base_snaps.last().expect("baseline has snapshots").now
    }

    /// Rebuilds the dropped timeline tail once lazy commits have eroded
    /// it past half of a full run's epochs: before that, candidates
    /// simply resume at the boundary (no worse than an average resume);
    /// beyond it, every evaluation would degenerate toward a full
    /// replay.
    fn maybe_rebuild(&mut self) {
        assert!(self.has_base, "no baseline: call reset() first");
        if !self.timeline_complete && self.base_snaps.len() * 2 < self.epochs_hint {
            self.rebuild_timeline();
        }
    }

    /// Re-records the dropped timeline tail by replaying the baseline
    /// from its last valid snapshot with recording on.
    fn rebuild_timeline(&mut self) {
        let idx = self.base_snaps.len() - 1;
        self.run_mapping.clone_from(&self.base_mapping);
        self.restore(idx, true);
        let popped = self.base_snaps.pop().expect("restored snapshot");
        self.snap_pool.push(popped);
        let makespan = self.run(true).expect("baseline replays cleanly");
        debug_assert_eq!(makespan, self.base_makespan);
        self.base_ready_at.clone_from(&self.ready_at);
        self.timeline_complete = true;
        self.epochs_hint = self.base_snaps.len();
    }

    fn check_mapping(&self, mapping: &[ProcId]) -> Result<(), SimError> {
        if mapping.len() != self.g.num_tasks() {
            return Err(SimError::InvalidAssignment(format!(
                "mapping covers {} of {} tasks",
                mapping.len(),
                self.g.num_tasks()
            )));
        }
        if let Some(p) = mapping.iter().find(|p| p.index() >= self.num_procs) {
            return Err(SimError::InvalidAssignment(format!(
                "{p} is not in the topology"
            )));
        }
        Ok(())
    }

    /// Whether the candidate move changes the dispatch decision the
    /// epoch recorded at `snap` made. O(P): the recorded decisions say
    /// what each affected processor picked in the baseline, and a
    /// single-task move can only change a pick by removing the picked
    /// task from its queue or by adding a higher-priority task to an
    /// idle processor's queue.
    fn decisions_diverge(&self, snap: &Snapshot, mv: Mv) -> bool {
        let decision_of = |p: u32| -> Option<u32> {
            snap.decisions
                .iter()
                .find(|&&(_, dp)| dp == p)
                .map(|&(t, _)| t)
        };
        let idle = |p: u32| snap.procs[p as usize].assigned == NONE;
        let is_ready = |t: u32| snap.ready.binary_search(&t).is_ok();
        let beats = |t: u32, c: u32| (self.order[t as usize], t) < (self.order[c as usize], c);
        // Does moving `t` out of `from`'s queue and into `to`'s change
        // either pick? (`gains` = the task the other side of a swap
        // adds to `from`'s queue, if any.)
        let side = |t: u32, from: u32, to: u32, gains: Option<u32>| -> bool {
            let t_ready = is_ready(t);
            if t_ready {
                if decision_of(from) == Some(t) {
                    return true;
                }
                if idle(to) {
                    match decision_of(to) {
                        None => return true,
                        Some(c) if beats(t, c) => return true,
                        _ => {}
                    }
                }
            }
            // A swap partner joining `from`'s queue can out-prioritize
            // the baseline pick there (or fill an empty queue: `g` is
            // ready here, so an idle `from` that dispatched nothing in
            // the baseline dispatches `g` under the candidate).
            if let Some(g) = gains {
                if is_ready(g) && idle(from) {
                    match decision_of(from) {
                        None => return true,
                        Some(c) if c != t && beats(g, c) => return true,
                        _ => {}
                    }
                }
            }
            false
        };
        match mv {
            Mv::Relocate { t, from, to } => from != to && side(t, from, to, None),
            Mv::Swap { a, b, pa, pb } => {
                pa != pb && (side(a, pa, pb, Some(b)) || side(b, pb, pa, Some(a)))
            }
        }
    }

    /// Runs the candidate in `cand_mapping`, resuming from the first
    /// baseline epoch whose dispatch decision the move changes.
    ///
    /// `bound` is the earliest time the moved task(s) become ready (the
    /// mapping of a task is first *read* when it is ready, so no
    /// earlier snapshot can diverge), and `affected` are the two
    /// processors whose queues the move touches: an epoch's decisions
    /// can only differ on those, so the first snapshot at which either
    /// processor would pick differently under the candidate mapping is
    /// the exact divergence point. Every epoch before it decides
    /// identically, hence the whole event trajectory up to it is
    /// shared. When *no* epoch decides differently the candidate
    /// replays the baseline exactly and no simulation runs at all.
    fn eval_candidate(&mut self, bound: SimTime, mv: Mv) -> Result<SimTime, SimError> {
        self.has_candidate = false;
        let first = self
            .base_snaps
            .partition_point(|s| s.now < bound)
            .saturating_sub(1);
        let mut resume = None;
        for idx in first..self.base_snaps.len() {
            if self.decisions_diverge(&self.base_snaps[idx], mv) {
                resume = Some(idx);
                break;
            }
        }
        let idx = match resume {
            Some(idx) => idx,
            None if self.timeline_complete => {
                // The move never changes a dispatch decision: the
                // candidate is the baseline trajectory (and the
                // baseline mapping).
                self.evaluations += 1;
                self.cand_makespan = self.base_makespan;
                self.cand_resume = self.base_snaps.len().saturating_sub(1);
                self.cand_is_noop = true;
                self.has_candidate = true;
                return Ok(self.base_makespan);
            }
            // Truncated timeline: the scan proves nothing diverges in
            // the valid prefix, but the dropped tail is unknown —
            // resume at the boundary.
            None => self.base_snaps.len() - 1,
        };
        std::mem::swap(&mut self.run_mapping, &mut self.cand_mapping);
        self.restore(idx, false);
        let res = self.run(false);
        std::mem::swap(&mut self.run_mapping, &mut self.cand_mapping);
        let makespan = res?;
        self.evaluations += 1;
        self.cand_makespan = makespan;
        self.cand_resume = idx;
        self.cand_is_noop = false;
        self.has_candidate = true;
        Ok(makespan)
    }

    /// Resets the scratch state to the empty time-0 engine state.
    fn init_state(&mut self) {
        self.now = 0;
        self.heap.clear();
        self.seq = 0;
        self.events = 0;
        self.epoch_pending = true;
        for pr in &mut self.procs {
            pr.reset();
        }
        for ch in &mut self.channels {
            ch.busy = false;
            ch.queue.clear();
        }
        self.live.clear();
        self.live_pos.fill(NONE);
        self.placement.fill(NONE);
        self.ready.clear();
        for t in self.g.tasks() {
            let d = self.g.in_degree(t) as u32;
            self.unfinished[t.index()] = d;
            self.pending[t.index()] = 0;
            self.ready_at[t.index()] = 0;
            if d == 0 {
                self.ready.push(t.index() as u32);
            }
        }
        self.finished = 0;
        self.max_finish = 0;
        self.reg_cache_valid = false;
        self.rebuild_waiting();
    }

    /// Rebuilds the per-processor waiting lists from `ready` and the
    /// current run's mapping.
    fn rebuild_waiting(&mut self) {
        for w in &mut self.waiting {
            w.clear();
        }
        for &t in &self.ready {
            self.waiting[self.run_mapping[t as usize].index()].push(t);
        }
    }

    /// Restores the scratch state from baseline snapshot `idx` (state at
    /// an epoch trigger; the epoch itself re-runs). `with_ready_at`
    /// seeds the scratch ready times from the baseline — only commit
    /// re-runs need that (speculative candidates never read them).
    fn restore(&mut self, idx: usize, with_ready_at: bool) {
        let snap = std::mem::take(&mut self.base_snaps[idx]);
        self.now = snap.now;
        self.seq = snap.seq;
        self.events = snap.events;
        self.epoch_pending = true;
        self.heap.clear();
        for &e in &snap.heap {
            self.heap.push(e);
        }
        self.procs.clone_from(&snap.procs);
        self.channels.clone_from(&snap.channels);
        self.live.clear();
        self.live_pos.fill(NONE);
        for &(id, meta, hop) in &snap.live_msgs {
            self.msgs[id as usize] = meta;
            self.msg_hop[id as usize] = hop;
            self.live_pos[id as usize] = self.live.len() as u32;
            self.live.push(id);
        }
        self.placement.clone_from(&snap.placement);
        self.unfinished.clone_from(&snap.unfinished);
        self.pending.clone_from(&snap.pending);
        self.ready.clone_from(&snap.ready);
        self.finished = snap.finished;
        self.max_finish = snap.max_finish;
        if with_ready_at {
            self.ready_at.clone_from(&self.base_ready_at);
        }
        self.base_snaps[idx] = snap;
        self.reg_cache_valid = false;
        // Derived state: depends on the mapping, which the caller set
        // (`run_mapping`) before restoring.
        self.rebuild_waiting();
    }

    /// Records the current scratch state as a snapshot into the given
    /// timeline.
    fn snap_record(&mut self) {
        let mut s = self.snap_pool.pop().unwrap_or_default();
        s.now = self.now;
        s.seq = self.seq;
        s.events = self.events;
        s.heap.clear();
        s.heap.extend(self.heap.iter().copied());
        s.procs.clone_from(&self.procs);
        s.channels.clone_from(&self.channels);
        s.live_msgs.clear();
        s.live_msgs.extend(
            self.live
                .iter()
                .map(|&id| (id, self.msgs[id as usize], self.msg_hop[id as usize])),
        );
        s.placement.clone_from(&self.placement);
        s.unfinished.clone_from(&self.unfinished);
        s.pending.clone_from(&self.pending);
        s.ready.clone_from(&self.ready);
        s.finished = self.finished;
        s.max_finish = self.max_finish;
        self.base_snaps.push(s);
    }

    /// The main event loop; a transliteration of `Engine::run` for the
    /// fixed-mapping scheduler. With `record`, the baseline timeline
    /// captures a snapshot at every scheduling epoch.
    fn run(&mut self, record: bool) -> Result<SimTime, SimError> {
        loop {
            let reg = self.min_register();
            if self.epoch_pending {
                let heap_next = self.heap.peek_time();
                let next = match (heap_next, reg) {
                    (Some(h), Some((r, _, _))) => Some(h.min(r)),
                    (h, r) => h.or(r.map(|(t, _, _)| t)),
                };
                if next.is_none_or(|t| t > self.now) {
                    self.epoch_pending = false;
                    if record {
                        self.snap_record();
                    }
                    self.run_epoch();
                    if record {
                        let snap = self.base_snaps.last_mut().expect("just recorded");
                        snap.decisions.clear();
                        snap.decisions.extend_from_slice(&self.assign_buf);
                    }
                    continue;
                }
            }
            // Pop the global (time, seq) minimum across the event heap
            // and the completion registers — exactly the order one
            // merged heap would produce.
            let use_reg = match (self.heap.peek(), reg) {
                (Some(&(ht, hr)), Some((rt, rs, _))) => (rt, rs) < (ht, hr >> 32),
                (None, Some(_)) => true,
                _ => false,
            };
            let (time, rest) = if use_reg {
                let (rt, _, rp) = reg.expect("register selected");
                self.procs[rp as usize].done_at = NOT_RUNNING;
                self.reg_cache_valid = false;
                (rt, None)
            } else {
                match self.heap.pop() {
                    Some((t, r)) => (t, Some(r)),
                    None => break,
                }
            };
            self.events += 1;
            if self.events > self.max_events {
                return Err(SimError::EventLimit);
            }
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            match rest {
                None => {
                    let (_, _, rp) = reg.expect("register selected");
                    self.on_task_done(rp);
                }
                Some(rest) => {
                    let arg = (rest & ARG_MASK) as u32;
                    if (rest >> 30) & 0b11 == KIND_OVERHEAD_DONE {
                        self.on_overhead_done(arg);
                    } else {
                        self.on_transfer_done(arg);
                    }
                }
            }
        }
        if (self.finished as usize) < self.g.num_tasks() {
            let idle = self.procs.iter().filter(|p| p.assigned == NONE).count();
            return Err(SimError::Deadlock {
                time: self.now,
                ready: self.ready.len(),
                idle,
            });
        }
        Ok(self.max_finish)
    }

    #[inline]
    fn push_ev(&mut self, time: SimTime, kind: u64, arg: u32) {
        self.heap.push((time, pack(self.seq, kind, arg)));
        self.seq += 1;
    }

    /// Dispatch epoch: every idle processor takes its waiting ready task
    /// with the lowest `(order, id)` — `FixedMapping::on_epoch`. Tasks
    /// waiting per processor are disjoint, so scanning each idle
    /// processor's own waiting list reproduces the engine's decisions
    /// exactly without touching the full ready set.
    fn run_epoch(&mut self) {
        let mut buf = std::mem::take(&mut self.assign_buf);
        buf.clear();
        if self.ready.is_empty() {
            self.assign_buf = buf;
            return;
        }
        for p in 0..self.num_procs {
            if self.procs[p].assigned != NONE {
                continue;
            }
            let mut best: Option<u32> = None;
            for &t in &self.waiting[p] {
                let better = match best {
                    None => true,
                    Some(b) => (self.order[t as usize], t) < (self.order[b as usize], b),
                };
                if better {
                    best = Some(t);
                }
            }
            if let Some(t) = best {
                buf.push((t, p as u32));
            }
        }
        for &(t, p) in &buf {
            self.assign(t, p);
        }
        self.assign_buf = buf;
    }

    fn assign(&mut self, t: u32, q: u32) {
        self.placement[t as usize] = q;
        self.procs[q as usize].assigned = t;
        let pos = self.ready.binary_search(&t).expect("task was ready");
        self.ready.remove(pos);
        let w = &mut self.waiting[q as usize];
        let wpos = w.iter().position(|&x| x == t).expect("task was waiting");
        w.swap_remove(wpos);

        let g = self.g;
        let tid = TaskId::from_index(t as usize);
        let mut pending = 0u32;
        if self.comm_enabled {
            let sigma = self.params.sigma;
            for (k, e) in g.predecessors(tid).iter().enumerate() {
                let src = self.placement[e.target.index()];
                debug_assert!(src != NONE, "predecessor finished");
                if src == q {
                    continue;
                }
                let msg_id = self.pred_base[t as usize] + k as u32;
                self.msgs[msg_id as usize] = MsgMeta {
                    dest_task: t,
                    src,
                    dest: q,
                    weight: link_occupancy_time(&self.params, e.weight),
                };
                self.msg_hop[msg_id as usize] = 0;
                debug_assert_eq!(self.live_pos[msg_id as usize], NONE);
                self.live_pos[msg_id as usize] = self.live.len() as u32;
                self.live.push(msg_id);
                pending += 1;
                self.enqueue_overhead(
                    src,
                    Oh {
                        kind: OhKind::Send,
                        dur: sigma,
                        msg: msg_id,
                    },
                );
            }
        }
        self.pending[t as usize] = pending;
        if pending == 0 {
            let pr = &mut self.procs[q as usize];
            debug_assert_eq!(pr.task, NONE);
            pr.task = t;
            pr.remaining = g.load(tid);
            pr.running_since = NOT_RUNNING;
            self.pump(q);
        }
    }

    fn enqueue_overhead(&mut self, p: u32, oh: Oh) {
        let pr = &mut self.procs[p as usize];
        match oh.kind {
            OhKind::Send => pr.sends.push_back(oh),
            _ => pr.incoming.push_back(oh),
        }
        self.pump(p);
    }

    /// Keeps processor `p` busy with the right thing (`Engine::pump`):
    /// pending overheads preempt compute; otherwise compute (re)starts.
    fn pump(&mut self, p: u32) {
        let now = self.now;
        let pr = &mut self.procs[p as usize];
        if pr.cur_oh.is_some() {
            return;
        }
        let next = pr.incoming.pop_front().or_else(|| pr.sends.pop_front());
        if let Some(oh) = next {
            if pr.task != NONE && pr.running_since != NOT_RUNNING {
                let done = now - pr.running_since;
                pr.remaining -= done;
                pr.running_since = NOT_RUNNING;
                pr.done_at = NOT_RUNNING; // disarm the completion register
                self.disarm_cache(p);
            }
            let pr = &mut self.procs[p as usize];
            pr.cur_oh = Some(oh);
            let at = now + oh.dur;
            self.push_ev(at, KIND_OVERHEAD_DONE, p);
            return;
        }
        if pr.task != NONE && pr.running_since == NOT_RUNNING {
            pr.running_since = now;
            let at = now + pr.remaining;
            let seq = self.seq;
            self.seq += 1;
            let pr = &mut self.procs[p as usize];
            pr.done_at = at;
            pr.done_seq = seq;
            self.arm_cache(at, seq, p);
        }
    }

    /// Cache maintenance: a newly armed register can only tighten the
    /// cached minimum.
    #[inline]
    fn arm_cache(&mut self, at: SimTime, seq: u64, p: u32) {
        if self.reg_cache_valid {
            if let Some((ct, cs, _)) = self.reg_cache {
                if (at, seq) < (ct, cs) {
                    self.reg_cache = Some((at, seq, p));
                }
            } else {
                self.reg_cache = Some((at, seq, p));
            }
        }
    }

    /// Cache maintenance: disarming the cached processor invalidates
    /// the cache (any other processor leaves the minimum intact).
    #[inline]
    fn disarm_cache(&mut self, p: u32) {
        if self.reg_cache_valid && matches!(self.reg_cache, Some((_, _, cp)) if cp == p) {
            self.reg_cache_valid = false;
        }
    }

    /// The minimum completion register as `(time, seq, proc)`.
    #[inline]
    fn min_register(&mut self) -> Option<(SimTime, u64, u32)> {
        if !self.reg_cache_valid {
            let mut min: Option<(SimTime, u64, u32)> = None;
            for (i, pr) in self.procs.iter().enumerate() {
                if pr.done_at != NOT_RUNNING
                    && min.is_none_or(|(t, s, _)| (pr.done_at, pr.done_seq) < (t, s))
                {
                    min = Some((pr.done_at, pr.done_seq, i as u32));
                }
            }
            self.reg_cache = min;
            self.reg_cache_valid = true;
        }
        self.reg_cache
    }

    #[inline]
    fn hop_proc(&self, src: u32, dst: u32, hop: usize) -> u32 {
        let pair = src as usize * self.num_procs + dst as usize;
        self.route_procs[self.proc_off[pair] as usize + hop]
    }

    #[inline]
    fn hop_chan(&self, src: u32, dst: u32, hop: usize) -> u32 {
        let pair = src as usize * self.num_procs + dst as usize;
        self.route_chans[self.chan_off[pair] as usize + hop]
    }

    fn channel_push(&mut self, msg_id: u32) {
        let m = self.msgs[msg_id as usize];
        let hop = self.msg_hop[msg_id as usize] as usize;
        let ch = self.hop_chan(m.src, m.dest, hop) as usize;
        if self.channels[ch].busy {
            self.channels[ch].queue.push_back(msg_id);
        } else {
            self.channels[ch].busy = true;
            let at = self.now + m.weight;
            self.push_ev(at, KIND_TRANSFER_DONE, msg_id);
        }
    }

    fn on_transfer_done(&mut self, msg_id: u32) {
        // Free the channel and start the next queued transfer.
        let m = self.msgs[msg_id as usize];
        let hop = self.msg_hop[msg_id as usize] as usize;
        let ch = self.hop_chan(m.src, m.dest, hop) as usize;
        self.channels[ch].busy = false;
        if let Some(next) = self.channels[ch].queue.pop_front() {
            self.channels[ch].busy = true;
            let at = self.now + self.msgs[next as usize].weight;
            self.push_ev(at, KIND_TRANSFER_DONE, next);
        }
        // Advance the message.
        self.msg_hop[msg_id as usize] += 1;
        let v = self.hop_proc(m.src, m.dest, hop + 1);
        let tau = self.params.tau;
        let kind = if v == m.dest {
            OhKind::Receive
        } else {
            OhKind::Route
        };
        self.enqueue_overhead(
            v,
            Oh {
                kind,
                dur: tau,
                msg: msg_id,
            },
        );
    }

    fn on_overhead_done(&mut self, p: u32) {
        let oh = self.procs[p as usize]
            .cur_oh
            .take()
            .expect("overhead timer fired without current overhead");
        match oh.kind {
            OhKind::Send | OhKind::Route => self.channel_push(oh.msg),
            OhKind::Receive => self.deliver(oh.msg),
        }
        self.pump(p);
    }

    fn deliver(&mut self, msg_id: u32) {
        // The message is done: drop it from the live set.
        let pos = self.live_pos[msg_id as usize] as usize;
        debug_assert_eq!(self.live[pos], msg_id);
        self.live.swap_remove(pos);
        self.live_pos[msg_id as usize] = NONE;
        if let Some(&moved) = self.live.get(pos) {
            self.live_pos[moved as usize] = pos as u32;
        }
        let t = self.msgs[msg_id as usize].dest_task;
        let c = &mut self.pending[t as usize];
        debug_assert!(*c > 0);
        *c -= 1;
        if *c == 0 {
            let q = self.placement[t as usize];
            let load = self.g.load(TaskId::from_index(t as usize));
            let pr = &mut self.procs[q as usize];
            debug_assert_eq!(pr.task, NONE);
            pr.task = t;
            pr.remaining = load;
            pr.running_since = NOT_RUNNING;
            self.pump(q);
        }
    }

    /// Fires when a completion register is popped; never stale (a
    /// preemption disarms the register instead).
    fn on_task_done(&mut self, p: u32) {
        let pr = &mut self.procs[p as usize];
        let t = pr.task;
        debug_assert!(t != NONE && pr.running_since != NOT_RUNNING);
        pr.task = NONE;
        pr.remaining = 0;
        pr.running_since = NOT_RUNNING;
        pr.assigned = NONE;
        if self.now > self.max_finish {
            self.max_finish = self.now;
        }
        self.finished += 1;
        let now = self.now;
        for e in self.g.successors(TaskId::from_index(t as usize)) {
            let c = &mut self.unfinished[e.target.index()];
            *c -= 1;
            if *c == 0 {
                let tid = e.target.index() as u32;
                let pos = self.ready.partition_point(|&x| x < tid);
                self.ready.insert(pos, tid);
                self.waiting[self.run_mapping[tid as usize].index()].push(tid);
                self.ready_at[e.target.index()] = now;
            }
        }
        self.epoch_pending = true;
        self.pump(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixedMapping;
    use crate::simulate;
    use anneal_graph::generate::{layered_random, LayeredConfig, Range};
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_topology::builders::{bus, hypercube, linear, ring, shared_bus, star};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    fn replay(
        g: &TaskGraph,
        topo: &Topology,
        params: &CommParams,
        cfg: &SimConfig,
        mapping: &[ProcId],
        order: &[u64],
    ) -> SimTime {
        let mut s = FixedMapping::new(mapping.to_vec()).with_order(order.to_vec());
        simulate(g, topo, params, &mut s, cfg).unwrap().makespan
    }

    fn sample_graph(seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        layered_random(
            &LayeredConfig {
                layers: 4,
                width: 5,
                edge_prob: 0.4,
                load: Range::new(us(1.0), us(40.0)),
                comm: Range::new(us(0.5), us(8.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn matches_engine_on_fresh_mappings() {
        let g = sample_graph(3);
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        for topo in [hypercube(3), ring(5), star(4), shared_bus(4), linear(3)] {
            let np = topo.num_procs();
            let params = CommParams::paper();
            let cfg = SimConfig::default();
            let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..6 {
                let mapping: Vec<ProcId> = (0..g.num_tasks())
                    .map(|_| p(rng.gen_range(0..np)))
                    .collect();
                let fast = ev.reset(&mapping).unwrap();
                let slow = replay(&g, &topo, &params, &cfg, &mapping, &order);
                assert_eq!(fast, slow, "{}", topo.name());
            }
        }
    }

    #[test]
    fn incremental_moves_match_full_replay() {
        let g = sample_graph(7);
        let n = g.num_tasks();
        let topo = hypercube(3);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = (0..n as u64).rev().collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut mapping: Vec<ProcId> = (0..n).map(|i| p(i % 8)).collect();
        ev.reset(&mapping).unwrap();
        for step in 0..200 {
            let t = rng.gen_range(0..n);
            let expected;
            let got;
            if rng.gen_bool(0.5) {
                let q = rng.gen_range(0..8);
                let mut cand = mapping.clone();
                cand[t] = p(q);
                expected = replay(&g, &topo, &params, &cfg, &cand, &order);
                got = ev.eval_relocate(TaskId::from_index(t), p(q)).unwrap();
                if rng.gen_bool(0.6) {
                    ev.commit();
                    mapping = cand;
                }
            } else {
                let u = rng.gen_range(0..n);
                let mut cand = mapping.clone();
                cand.swap(t, u);
                expected = replay(&g, &topo, &params, &cfg, &cand, &order);
                got = ev
                    .eval_swap(TaskId::from_index(t), TaskId::from_index(u))
                    .unwrap();
                if rng.gen_bool(0.6) {
                    ev.commit();
                    mapping = cand;
                }
            }
            assert_eq!(got, expected, "step {step}");
            assert_eq!(ev.mapping(), mapping.as_slice(), "step {step}");
        }
    }

    #[test]
    fn no_comm_mode_matches_engine() {
        let g = sample_graph(5);
        let topo = bus(4);
        let params = CommParams::zero();
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        let mapping: Vec<ProcId> = (0..g.num_tasks()).map(|i| p(i % 4)).collect();
        let fast = ev.reset(&mapping).unwrap();
        assert_eq!(fast, replay(&g, &topo, &params, &cfg, &mapping, &order));
        // single processor serializes exactly
        let topo1 = linear(1);
        let mut ev1 = FixedEval::new(&g, &topo1, &params, &cfg, order).unwrap();
        let all0 = vec![p(0); g.num_tasks()];
        assert_eq!(ev1.reset(&all0).unwrap(), g.total_work());
    }

    #[test]
    fn zero_load_tasks_and_tiny_graphs() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(0);
        let c = b.add_task(us(5.0));
        let d = b.add_task(0);
        b.add_edge(a, c, us(2.0)).unwrap();
        b.add_edge(c, d, 0).unwrap();
        let g = b.build().unwrap();
        let topo = linear(2);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order = vec![0, 1, 2];
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        for mapping in [
            vec![p(0), p(1), p(0)],
            vec![p(0), p(0), p(1)],
            vec![p(1), p(0), p(0)],
        ] {
            assert_eq!(
                ev.reset(&mapping).unwrap(),
                replay(&g, &topo, &params, &cfg, &mapping, &order)
            );
        }
    }

    #[test]
    fn steady_state_move_evaluation_is_allocation_free_of_results() {
        // Smoke for buffer reuse: thousands of evaluations on one
        // evaluator must agree with the engine at the end of the chain.
        let g = sample_graph(13);
        let n = g.num_tasks();
        let topo = ring(5);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = vec![0; n];
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mapping: Vec<ProcId> = (0..n).map(|i| p(i % 5)).collect();
        ev.reset(&mapping).unwrap();
        for _ in 0..2000 {
            let t = rng.gen_range(0..n);
            let q = rng.gen_range(0..5);
            ev.eval_relocate(TaskId::from_index(t), p(q)).unwrap();
            if rng.gen_bool(0.3) {
                ev.commit();
            }
        }
        let final_mapping = ev.mapping().to_vec();
        assert_eq!(
            ev.makespan(),
            replay(&g, &topo, &params, &cfg, &final_mapping, &order)
        );
        assert_eq!(ev.evaluations(), 2001);
    }

    #[test]
    fn invalid_mappings_are_rejected() {
        let g = sample_graph(1);
        let topo = bus(2);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order).unwrap();
        let short = vec![p(0); g.num_tasks() - 1];
        assert!(matches!(
            ev.reset(&short),
            Err(SimError::InvalidAssignment(_))
        ));
        let out_of_range = vec![p(7); g.num_tasks()];
        assert!(matches!(
            ev.reset(&out_of_range),
            Err(SimError::InvalidAssignment(_))
        ));
    }

    #[test]
    fn event_limit_is_enforced() {
        let g = sample_graph(1);
        let topo = linear(2);
        let params = CommParams::paper();
        let cfg = SimConfig {
            comm_enabled: true,
            max_events: 3,
        };
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order).unwrap();
        let mapping: Vec<ProcId> = (0..g.num_tasks()).map(|i| p(i % 2)).collect();
        assert_eq!(ev.reset(&mapping), Err(SimError::EventLimit));
    }
}
