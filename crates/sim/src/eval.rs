//! Fast makespan evaluation of fixed mappings, with incremental moves.
//!
//! Whole-graph annealing (`anneal-core`'s `static_sa`) and the arena's
//! adversarial search both evaluate *thousands* of candidate mappings,
//! and until this module existed every candidate paid for a complete
//! [`simulate`](crate::simulate) call: a fresh route table, a fresh
//! event queue, Gantt span recording, statistics, and a fully allocated
//! [`SimResult`](crate::SimResult) — all to read one number, the
//! makespan.
//!
//! [`FixedEval`] is a specialization of the shared fast-path kernel
//! ([`crate::fastpath`] — packed 16-byte 4-ary event heap,
//! per-processor compute-completion registers, precomputed all-pairs
//! routes, fully reused buffers) to the
//! [`FixedMapping`](crate::FixedMapping) scheduler. The kernel supplies
//! the event plumbing; this module supplies the fixed-mapping dispatch
//! rule (per-processor waiting lists) and everything **incremental**:
//!
//! after [`FixedEval::eval_relocate`] or [`FixedEval::eval_swap`], only
//! the *affected cone* of the move is recomputed. Because messages
//! preempt third-party processors (routing τ) and contend for channels
//! (FIFO), the structurally affected cone of a move — the moved task's
//! dependents plus the two processors' queues — is not sound for this
//! engine: a retimed message can displace an unrelated message on a
//! shared link. The cone that *is* sound is **temporal**, and the
//! evaluator computes it exactly:
//!
//! 1. a task's mapping is first *read* when the task becomes ready, so
//!    nothing can diverge before the moved tasks' ready times;
//! 2. from there, the only reads are dispatch decisions, and a move
//!    touches exactly two processors' waiting queues — so the first
//!    epoch of the committed baseline at which either processor would
//!    pick a different task under the candidate mapping is the exact
//!    divergence point (if no epoch decides differently, the candidate
//!    provably replays the baseline and no simulation runs at all).
//!
//! The evaluator snapshots the engine state at every scheduling epoch
//! of the committed baseline, resumes the candidate at the divergence
//! epoch, and replays only the suffix. [`FixedEval::commit`] is *lazy*:
//! the accepted candidate shares the baseline timeline up to its resume
//! point, so commit just truncates the snapshot list there; the dropped
//! tail is re-recorded only when repeated commits have eroded it past
//! half a run (until then, candidates conservatively resume at the
//! boundary — no worse than an average move).
//!
//! The equivalence contract — `FixedEval` agrees with a from-scratch
//! DES replay on every mapping, including after arbitrarily long
//! relocate/swap/commit chains — is enforced by unit tests here and
//! the proptest suite in `anneal-core/tests/evaluator.rs`; the
//! allocation-regression test in `tests/alloc.rs` pins steady-state
//! move evaluation at zero heap allocation.

use anneal_graph::{TaskGraph, TaskId};
use anneal_topology::{CommParams, ProcId, RouteTable, Topology};

use crate::engine::{SimConfig, SimError};
use crate::fastpath::{Driver, FlatRoutes, HeapEv, KernelCtx, KernelState, MsgMeta, Oh, NONE};
use crate::SimTime;

/// Always-on counters of a [`FixedEval`]'s incremental machinery,
/// readable via [`FixedEval::obs_stats`]. All deterministic: pure
/// functions of the instance and the sequence of
/// `reset`/`eval_*`/`commit` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalObsStats {
    /// Full baseline runs ([`FixedEval::reset`]).
    pub resets: u64,
    /// Moves proposed (`eval_relocate` + `eval_swap`).
    pub moves: u64,
    /// Candidates that provably replayed the baseline (no simulation).
    pub noop_candidates: u64,
    /// Baseline epochs skipped by resuming mid-timeline instead of
    /// replaying from time 0.
    pub epochs_skipped: u64,
    /// Epochs actually re-simulated across all candidate runs.
    pub epochs_replayed: u64,
    /// Candidates adopted ([`FixedEval::commit`]).
    pub commits: u64,
    /// Commits that truncated the snapshot tail (lazy commits).
    pub lazy_truncations: u64,
    /// Times the eroded timeline tail was re-recorded.
    pub timeline_rebuilds: u64,
    /// Deepest resume index used (snapshots into the timeline).
    pub max_resume_depth: u64,
}

impl EvalObsStats {
    /// Accumulates into `r` under `eval.*` keys (counters except the
    /// `eval.max_resume_depth` gauge).
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("eval.resets", self.resets);
        r.add("eval.moves", self.moves);
        r.add("eval.noop_candidates", self.noop_candidates);
        r.add("eval.epochs_skipped", self.epochs_skipped);
        r.add("eval.epochs_replayed", self.epochs_replayed);
        r.add("eval.commits", self.commits);
        r.add("eval.lazy_truncations", self.lazy_truncations);
        r.add("eval.timeline_rebuilds", self.timeline_rebuilds);
        r.hwm("eval.max_resume_depth", self.max_resume_depth);
    }
}

/// A candidate move, as the divergence scan sees it.
#[derive(Debug, Clone, Copy)]
enum Mv {
    /// Task `t` relocates from processor `from` to `to`.
    Relocate { t: u32, from: u32, to: u32 },
    /// Tasks `a` (on `pa`) and `b` (on `pb`) exchange processors.
    Swap { a: u32, b: u32, pa: u32, pb: u32 },
}

/// The scalar slice of one processor's snapshot state; its two
/// overhead queues live flattened in [`Snapshot::queue_items`]
/// (`incoming_len` entries, then `sends_len`).
#[derive(Debug, Clone, Copy, Default)]
struct ProcSnap {
    assigned: u32,
    task: u32,
    remaining: SimTime,
    running_since: SimTime,
    cur_oh: Option<Oh>,
    done_at: SimTime,
    done_seq: u64,
    incoming_len: u32,
    sends_len: u32,
}

/// Complete engine state at one scheduling epoch (taken *before* the
/// epoch's dispatch decisions run). Restoring a snapshot and re-running
/// reproduces the original suffix event for event.
///
/// Per-processor overhead queues and per-channel FIFO queues are
/// stored flattened in shared arenas (`queue_items` / `chan_items`)
/// rather than as nested `VecDeque`s: every message occupies at most
/// one overhead queue and at most one channel queue at a time, so both
/// arenas are bounded by the predecessor-edge count — `snap_record`
/// reserves that bound once, after which recycling a pooled snapshot
/// into *any* state allocates nothing (nested queues would keep
/// reallocating whenever a recycled snapshot met a larger queue than
/// it had ever held).
#[derive(Debug, Clone, Default)]
struct Snapshot {
    now: SimTime,
    seq: u64,
    events: u64,
    heap: Vec<HeapEv>,
    procs: Vec<ProcSnap>,
    /// Flattened per-proc overhead queues, in proc order.
    queue_items: Vec<Oh>,
    chan_busy: Vec<bool>,
    chan_lens: Vec<u32>,
    /// Flattened per-channel FIFO queues, in channel order.
    chan_items: Vec<u32>,
    /// In-flight messages as `(edge id, meta, hop)`.
    live_msgs: Vec<(u32, MsgMeta, u32)>,
    placement: Vec<u32>,
    unfinished: Vec<u32>,
    pending: Vec<u32>,
    ready: Vec<u32>,
    finished: u32,
    max_finish: SimTime,
    /// The dispatch decisions the epoch at this snapshot made
    /// (`(task, proc)` pairs, one per dispatching processor) — filled
    /// in right after the epoch runs. The divergence scan reads these
    /// instead of recomputing queue minima: a candidate mapping
    /// diverges at this epoch iff it changes one of the two affected
    /// processors' picks, which is decidable from the recorded pick
    /// plus one `(order, id)` comparison.
    decisions: Vec<(u32, u32)>,
}

/// The kernel driver for fixed-mapping runs: per-processor waiting
/// lists make each epoch's dispatch O(idle + waiting) instead of
/// O(ready × procs), `ready_at` feeds the divergence scan's lower
/// bound, and the epoch hooks record baseline snapshots.
struct FixedDriver<'s> {
    order: &'s [u64],
    mapping: &'s [ProcId],
    waiting: &'s mut [Vec<u32>],
    ready_at: &'s mut [SimTime],
    record: bool,
    base_snaps: &'s mut Vec<Snapshot>,
    snap_pool: &'s mut Vec<Snapshot>,
}

impl Driver for FixedDriver<'_> {
    /// Every idle processor takes its waiting ready task with the
    /// lowest `(order, id)` — `FixedMapping::on_epoch`. Tasks waiting
    /// per processor are disjoint, so scanning each idle processor's
    /// own waiting list reproduces the engine's decisions exactly
    /// without touching the full ready set.
    fn dispatch(
        &mut self,
        k: &KernelState,
        _ctx: &KernelCtx<'_>,
        out: &mut Vec<(u32, u32)>,
    ) -> Result<(), SimError> {
        for (p, pr) in k.procs().iter().enumerate() {
            if pr.assigned != NONE {
                continue;
            }
            let mut best: Option<u32> = None;
            for &t in &self.waiting[p] {
                let better = match best {
                    None => true,
                    Some(b) => (self.order[t as usize], t) < (self.order[b as usize], b),
                };
                if better {
                    best = Some(t);
                }
            }
            if let Some(t) = best {
                out.push((t, p as u32));
            }
        }
        Ok(())
    }

    // lint:allow(panic) reason="the kernel assigns only tasks it previously reported ready"
    fn task_assigned(&mut self, t: u32, q: u32) {
        let w = &mut self.waiting[q as usize];
        let pos = w.iter().position(|&x| x == t).expect("task was waiting");
        w.swap_remove(pos);
    }

    fn task_ready(&mut self, t: u32, now: SimTime) {
        self.waiting[self.mapping[t as usize].index()].push(t);
        self.ready_at[t as usize] = now;
    }

    fn epoch_begin(&mut self, k: &KernelState) {
        if self.record {
            snap_record(k, self.base_snaps, self.snap_pool);
        }
    }

    // lint:allow(panic) reason="epoch_begin recorded a snapshot on this same epoch"
    fn epoch_end(&mut self, k: &KernelState) {
        if self.record {
            let snap = self.base_snaps.last_mut().expect("just recorded");
            snap.decisions.clear();
            snap.decisions.extend_from_slice(&k.assign_buf);
        }
    }
}

/// Records the kernel's current state as a snapshot (recycling pooled
/// buffers). Every buffer is reserved to its exact worst-case bound
/// first, so a recycled snapshot never reallocates regardless of which
/// state it is asked to hold.
fn snap_record(k: &KernelState, snaps: &mut Vec<Snapshot>, pool: &mut Vec<Snapshot>) {
    let mut s = pool.pop().unwrap_or_default();
    let n = k.placement.len();
    let ne = k.msgs.len();
    let np = k.num_procs;
    let nc = k.num_channels;
    s.now = k.now;
    s.seq = k.seq;
    s.events = k.events;
    s.heap.clear();
    s.heap.reserve(np + nc);
    s.heap.extend(k.heap.iter().copied());
    s.procs.clear();
    s.procs.reserve(np);
    s.queue_items.clear();
    s.queue_items.reserve(ne);
    for pr in k.procs() {
        s.procs.push(ProcSnap {
            assigned: pr.assigned,
            task: pr.task,
            remaining: pr.remaining,
            running_since: pr.running_since,
            cur_oh: pr.cur_oh,
            done_at: pr.done_at,
            done_seq: pr.done_seq,
            incoming_len: pr.incoming.len() as u32,
            sends_len: pr.sends.len() as u32,
        });
        s.queue_items.extend(pr.incoming.iter().copied());
        s.queue_items.extend(pr.sends.iter().copied());
    }
    s.chan_busy.clear();
    s.chan_busy.reserve(nc);
    s.chan_lens.clear();
    s.chan_lens.reserve(nc);
    s.chan_items.clear();
    s.chan_items.reserve(ne);
    for ch in &k.channels[..nc] {
        s.chan_busy.push(ch.busy);
        s.chan_lens.push(ch.queue.len() as u32);
        s.chan_items.extend(ch.queue.iter().copied());
    }
    s.live_msgs.clear();
    s.live_msgs.reserve(ne);
    s.live_msgs.extend(
        k.live
            .iter()
            .map(|&id| (id, k.msgs[id as usize], k.msg_hop[id as usize])),
    );
    s.placement.clear();
    s.placement.reserve(n);
    s.placement.extend_from_slice(&k.placement);
    s.unfinished.clear();
    s.unfinished.reserve(n);
    s.unfinished.extend_from_slice(&k.unfinished);
    s.pending.clear();
    s.pending.reserve(n);
    s.pending.extend_from_slice(&k.pending);
    s.ready.clear();
    s.ready.reserve(n);
    s.ready.extend_from_slice(&k.ready);
    s.finished = k.finished;
    s.max_finish = k.max_finish;
    s.decisions.clear();
    s.decisions.reserve(np);
    snaps.push(s);
}

/// Incremental fixed-mapping makespan evaluator.
///
/// Create one per `(graph, topology, params, config, dispatch order)`
/// instance, establish a baseline with [`FixedEval::reset`], then probe
/// single-task moves with [`FixedEval::eval_relocate`] /
/// [`FixedEval::eval_swap`] and adopt accepted candidates with
/// [`FixedEval::commit`]. Every makespan returned is bit-identical to
/// `simulate(..)` with `FixedMapping::new(mapping).with_order(order)`.
#[derive(Debug)]
pub struct FixedEval<'a> {
    g: &'a TaskGraph,
    num_procs: usize,
    num_channels: usize,
    params: CommParams,
    comm_enabled: bool,
    max_events: u64,
    order: Vec<u64>,
    routes: FlatRoutes,
    /// `pred_base[t]` = first predecessor-edge id of task `t` (edge ids
    /// number the incoming edges of all tasks consecutively).
    pred_base: Vec<u32>,

    // Committed baseline.
    base_mapping: Vec<ProcId>,
    base_makespan: SimTime,
    base_ready_at: Vec<SimTime>,
    base_snaps: Vec<Snapshot>,
    has_base: bool,
    /// `true` when `base_snaps` covers the baseline's whole run. A lazy
    /// commit truncates the timeline at the accepted candidate's resume
    /// point (the shared prefix stays valid); the missing tail is only
    /// re-recorded when it has eroded past half of `epochs_hint`.
    timeline_complete: bool,
    /// Epoch count of the last complete timeline (rebuild heuristic).
    epochs_hint: usize,

    // Last evaluated candidate.
    cand_mapping: Vec<ProcId>,
    cand_makespan: SimTime,
    cand_resume: usize,
    /// The candidate provably replayed the baseline trajectory (its
    /// mapping dispatches identically), so commit has no suffix to
    /// adopt.
    cand_is_noop: bool,
    has_candidate: bool,

    /// The live engine state of whichever run is in progress (the
    /// shared fast-path kernel; every buffer reused).
    k: KernelState,
    run_mapping: Vec<ProcId>,
    /// `waiting[p]` = ready tasks mapped to processor `p` under the
    /// current run's mapping (unordered; dispatch selects the minimum
    /// by `(order, id)`). Derived state — rebuilt from the kernel's
    /// ready set on restore — so snapshots don't store it.
    waiting: Vec<Vec<u32>>,
    ready_at: Vec<SimTime>,
    snap_pool: Vec<Snapshot>,
    evaluations: u64,
    obs: EvalObsStats,
}

impl<'a> FixedEval<'a> {
    /// Builds an evaluator for one instance. `order` is the dispatch
    /// priority per task (lower dispatches first, ties by task id) —
    /// exactly [`FixedMapping::with_order`](crate::FixedMapping).
    ///
    /// Errors if the topology is disconnected.
    ///
    /// # Panics
    ///
    /// Panics when `order.len() != g.num_tasks()`.
    pub fn new(
        g: &'a TaskGraph,
        topo: &Topology,
        params: &CommParams,
        cfg: &SimConfig,
        order: Vec<u64>,
    ) -> Result<Self, SimError> {
        assert_eq!(order.len(), g.num_tasks(), "order must cover every task");
        let table = RouteTable::build(topo).map_err(|e| SimError::Disconnected(e.to_string()))?;
        let routes = FlatRoutes::build(topo, &table);
        let np = topo.num_procs();
        let n = g.num_tasks();
        let mut pred_base = Vec::with_capacity(n + 1);
        crate::fastpath::build_pred_base(g, &mut pred_base);
        Ok(FixedEval {
            g,
            num_procs: np,
            num_channels: topo.num_channels(),
            params: *params,
            comm_enabled: cfg.comm_enabled,
            max_events: cfg.max_events,
            order,
            routes,
            pred_base,
            base_mapping: Vec::new(),
            base_makespan: 0,
            base_ready_at: vec![0; n],
            // A run records at most n + 1 epochs; snapshots circulate
            // between the timeline and the pool, so 2(n + 2) slots keep
            // both lists from ever reallocating in steady state.
            base_snaps: Vec::with_capacity(2 * n + 4),
            has_base: false,
            timeline_complete: false,
            epochs_hint: 0,
            cand_mapping: Vec::new(),
            cand_makespan: 0,
            cand_resume: 0,
            cand_is_noop: false,
            has_candidate: false,
            k: KernelState::default(),
            run_mapping: Vec::new(),
            waiting: vec![Vec::new(); np],
            ready_at: vec![0; n],
            snap_pool: Vec::with_capacity(2 * n + 4),
            evaluations: 0,
            obs: EvalObsStats::default(),
        })
    }

    /// The committed baseline mapping.
    ///
    /// # Panics
    ///
    /// Panics before the first successful [`FixedEval::reset`].
    pub fn mapping(&self) -> &[ProcId] {
        assert!(self.has_base, "no baseline: call reset() first");
        &self.base_mapping
    }

    /// The committed baseline makespan.
    ///
    /// # Panics
    ///
    /// Panics before the first successful [`FixedEval::reset`].
    pub fn makespan(&self) -> SimTime {
        assert!(self.has_base, "no baseline: call reset() first");
        self.base_makespan
    }

    /// Candidate evaluations performed (resets + moves).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Counters of the incremental machinery (resume depths, epochs
    /// skipped vs replayed, lazy-commit truncations, rebuilds).
    pub fn obs_stats(&self) -> EvalObsStats {
        self.obs
    }

    /// Establishes `mapping` as the committed baseline by a full run,
    /// returning its makespan.
    pub fn reset(&mut self, mapping: &[ProcId]) -> Result<SimTime, SimError> {
        self.check_mapping(mapping)?;
        self.has_base = false;
        self.has_candidate = false;
        self.run_mapping.clear();
        self.run_mapping.extend_from_slice(mapping);
        self.snap_pool.append(&mut self.base_snaps);
        self.init_state();
        let makespan = self.run(true)?;
        self.evaluations += 1;
        self.obs.resets += 1;
        self.base_mapping.clone_from(&self.run_mapping);
        self.base_makespan = makespan;
        self.base_ready_at.clone_from(&self.ready_at);
        self.has_base = true;
        self.timeline_complete = true;
        self.epochs_hint = self.base_snaps.len();
        Ok(makespan)
    }

    /// Makespan of the baseline with `task` relocated to `to`. The
    /// baseline itself is unchanged until [`FixedEval::commit`].
    ///
    /// # Panics
    ///
    /// Panics without a baseline or when `task`/`to` are out of range.
    pub fn eval_relocate(&mut self, task: TaskId, to: ProcId) -> Result<SimTime, SimError> {
        assert!(self.has_base, "no baseline: call reset() first");
        assert!(to.index() < self.num_procs, "{to} out of range");
        self.obs.moves += 1;
        self.maybe_rebuild();
        self.cand_mapping.clone_from(&self.base_mapping);
        let from = self.cand_mapping[task.index()];
        self.cand_mapping[task.index()] = to;
        let dirty = self.dirty_time();
        let bound = self.effective_bound(task.index(), dirty);
        let mv = Mv::Relocate {
            t: task.index() as u32,
            from: from.index() as u32,
            to: to.index() as u32,
        };
        self.eval_candidate(bound, mv)
    }

    /// Makespan of the baseline with tasks `a` and `b` exchanging
    /// processors. The baseline is unchanged until [`FixedEval::commit`].
    ///
    /// # Panics
    ///
    /// Panics without a baseline or when `a`/`b` are out of range.
    pub fn eval_swap(&mut self, a: TaskId, b: TaskId) -> Result<SimTime, SimError> {
        assert!(self.has_base, "no baseline: call reset() first");
        self.obs.moves += 1;
        self.maybe_rebuild();
        self.cand_mapping.clone_from(&self.base_mapping);
        let (pa, pb) = (self.cand_mapping[a.index()], self.cand_mapping[b.index()]);
        self.cand_mapping.swap(a.index(), b.index());
        let dirty = self.dirty_time();
        let bound = self
            .effective_bound(a.index(), dirty)
            .min(self.effective_bound(b.index(), dirty));
        let mv = Mv::Swap {
            a: a.index() as u32,
            b: b.index() as u32,
            pa: pa.index() as u32,
            pb: pb.index() as u32,
        };
        self.eval_candidate(bound, mv)
    }

    /// Adopts the most recently evaluated candidate as the committed
    /// baseline. O(1) apart from bookkeeping: the candidate shares the
    /// baseline's timeline up to its resume point, so the snapshot tail
    /// is dropped and re-recorded lazily once it has eroded enough to
    /// matter.
    ///
    /// # Panics
    ///
    /// Panics when no candidate evaluation succeeded since the last
    /// `reset`/`commit`.
    pub fn commit(&mut self) {
        assert!(self.has_candidate, "no candidate to commit");
        self.has_candidate = false;
        self.obs.commits += 1;
        if self.cand_is_noop {
            // The candidate's trajectory is the baseline's; nothing in
            // the timeline changes (and the mappings are equal).
            debug_assert_eq!(self.base_mapping, self.cand_mapping);
            return;
        }
        // Lazy commit: the candidate shares the baseline's trajectory
        // strictly before its resume epoch, so every snapshot up to and
        // including the resume point (a pre-epoch state) is already the
        // new baseline's. The tail is simply dropped; `base_ready_at`
        // keeps stale entries, guarded by the dirty-boundary rule in
        // `effective_bound`, and `rebuild_timeline` re-records the tail
        // once it has eroded enough to matter.
        self.base_mapping.clone_from(&self.cand_mapping);
        self.base_makespan = self.cand_makespan;
        self.obs.lazy_truncations += 1;
        self.snap_pool
            .extend(self.base_snaps.drain(self.cand_resume + 1..));
        self.timeline_complete = false;
    }

    /// The scan lower bound for a moved task: its baseline ready time
    /// when that value is provably still current, else the dirty
    /// boundary. A stale entry `< dirty_time` lies in the shared prefix
    /// of every baseline since it was written, so it is exact; any
    /// other value could describe a dropped tail, and the conservative
    /// answer is the boundary itself.
    fn effective_bound(&self, task: usize, dirty_time: SimTime) -> SimTime {
        let stale = self.base_ready_at[task];
        if self.timeline_complete || stale < dirty_time {
            stale
        } else {
            dirty_time
        }
    }

    /// Time of the last valid snapshot — the boundary beyond which the
    /// lazily committed timeline has been dropped.
    // lint:allow(panic) reason="reset() always records the time-0 snapshot"
    fn dirty_time(&self) -> SimTime {
        self.base_snaps.last().expect("baseline has snapshots").now
    }

    /// Rebuilds the dropped timeline tail once lazy commits have eroded
    /// it past half of a full run's epochs: before that, candidates
    /// simply resume at the boundary (no worse than an average resume);
    /// beyond it, every evaluation would degenerate toward a full
    /// replay.
    fn maybe_rebuild(&mut self) {
        assert!(self.has_base, "no baseline: call reset() first");
        if !self.timeline_complete && self.base_snaps.len() * 2 < self.epochs_hint {
            self.rebuild_timeline();
        }
    }

    /// Re-records the dropped timeline tail by replaying the baseline
    /// from its last valid snapshot with recording on.
    // lint:allow(panic) reason="maybe_rebuild only runs with a baseline, which replays deterministically"
    fn rebuild_timeline(&mut self) {
        self.obs.timeline_rebuilds += 1;
        let idx = self.base_snaps.len() - 1;
        self.run_mapping.clone_from(&self.base_mapping);
        self.restore(idx, true);
        let popped = self.base_snaps.pop().expect("restored snapshot");
        self.snap_pool.push(popped);
        let makespan = self.run(true).expect("baseline replays cleanly");
        debug_assert_eq!(makespan, self.base_makespan);
        self.base_ready_at.clone_from(&self.ready_at);
        self.timeline_complete = true;
        self.epochs_hint = self.base_snaps.len();
    }

    fn check_mapping(&self, mapping: &[ProcId]) -> Result<(), SimError> {
        if mapping.len() != self.g.num_tasks() {
            return Err(SimError::InvalidAssignment(format!(
                "mapping covers {} of {} tasks",
                mapping.len(),
                self.g.num_tasks()
            )));
        }
        if let Some(p) = mapping.iter().find(|p| p.index() >= self.num_procs) {
            return Err(SimError::InvalidAssignment(format!(
                "{p} is not in the topology"
            )));
        }
        Ok(())
    }

    /// Whether the candidate move changes the dispatch decision the
    /// epoch recorded at `snap` made. O(P): the recorded decisions say
    /// what each affected processor picked in the baseline, and a
    /// single-task move can only change a pick by removing the picked
    /// task from its queue or by adding a higher-priority task to an
    /// idle processor's queue.
    fn decisions_diverge(&self, snap: &Snapshot, mv: Mv) -> bool {
        let decision_of = |p: u32| -> Option<u32> {
            snap.decisions
                .iter()
                .find(|&&(_, dp)| dp == p)
                .map(|&(t, _)| t)
        };
        let idle = |p: u32| snap.procs[p as usize].assigned == NONE;
        let is_ready = |t: u32| snap.ready.binary_search(&t).is_ok();
        let beats = |t: u32, c: u32| (self.order[t as usize], t) < (self.order[c as usize], c);
        // Does moving `t` out of `from`'s queue and into `to`'s change
        // either pick? (`gains` = the task the other side of a swap
        // adds to `from`'s queue, if any.)
        let side = |t: u32, from: u32, to: u32, gains: Option<u32>| -> bool {
            let t_ready = is_ready(t);
            if t_ready {
                if decision_of(from) == Some(t) {
                    return true;
                }
                if idle(to) {
                    match decision_of(to) {
                        None => return true,
                        Some(c) if beats(t, c) => return true,
                        _ => {}
                    }
                }
            }
            // A swap partner joining `from`'s queue can out-prioritize
            // the baseline pick there (or fill an empty queue: `g` is
            // ready here, so an idle `from` that dispatched nothing in
            // the baseline dispatches `g` under the candidate).
            if let Some(g) = gains {
                if is_ready(g) && idle(from) {
                    match decision_of(from) {
                        None => return true,
                        Some(c) if c != t && beats(g, c) => return true,
                        _ => {}
                    }
                }
            }
            false
        };
        match mv {
            Mv::Relocate { t, from, to } => from != to && side(t, from, to, None),
            Mv::Swap { a, b, pa, pb } => {
                pa != pb && (side(a, pa, pb, Some(b)) || side(b, pb, pa, Some(a)))
            }
        }
    }

    /// Runs the candidate in `cand_mapping`, resuming from the first
    /// baseline epoch whose dispatch decision the move changes.
    ///
    /// `bound` is the earliest time the moved task(s) become ready (the
    /// mapping of a task is first *read* when it is ready, so no
    /// earlier snapshot can diverge), and `affected` are the two
    /// processors whose queues the move touches: an epoch's decisions
    /// can only differ on those, so the first snapshot at which either
    /// processor would pick differently under the candidate mapping is
    /// the exact divergence point. Every epoch before it decides
    /// identically, hence the whole event trajectory up to it is
    /// shared. When *no* epoch decides differently the candidate
    /// replays the baseline exactly and no simulation runs at all.
    fn eval_candidate(&mut self, bound: SimTime, mv: Mv) -> Result<SimTime, SimError> {
        self.has_candidate = false;
        let first = self
            .base_snaps
            .partition_point(|s| s.now < bound)
            .saturating_sub(1);
        let mut resume = None;
        for idx in first..self.base_snaps.len() {
            if self.decisions_diverge(&self.base_snaps[idx], mv) {
                resume = Some(idx);
                break;
            }
        }
        let idx = match resume {
            Some(idx) => idx,
            None if self.timeline_complete => {
                // The move never changes a dispatch decision: the
                // candidate is the baseline trajectory (and the
                // baseline mapping).
                self.evaluations += 1;
                self.obs.noop_candidates += 1;
                self.obs.epochs_skipped += self.base_snaps.len() as u64;
                self.cand_makespan = self.base_makespan;
                self.cand_resume = self.base_snaps.len().saturating_sub(1);
                self.cand_is_noop = true;
                self.has_candidate = true;
                return Ok(self.base_makespan);
            }
            // Truncated timeline: the scan proves nothing diverges in
            // the valid prefix, but the dropped tail is unknown —
            // resume at the boundary.
            None => self.base_snaps.len() - 1,
        };
        std::mem::swap(&mut self.run_mapping, &mut self.cand_mapping);
        self.restore(idx, false);
        // The kernel's epoch counter is monotone across restores (it is
        // not snapshot state), so the delta over the resumed run is the
        // number of epochs actually re-simulated.
        let epochs_before = self.k.epochs;
        let res = self.run(false);
        std::mem::swap(&mut self.run_mapping, &mut self.cand_mapping);
        let makespan = res?;
        self.evaluations += 1;
        self.obs.epochs_skipped += idx as u64;
        self.obs.epochs_replayed += self.k.epochs - epochs_before;
        self.obs.max_resume_depth = self.obs.max_resume_depth.max(idx as u64);
        self.cand_makespan = makespan;
        self.cand_resume = idx;
        self.cand_is_noop = false;
        self.has_candidate = true;
        Ok(makespan)
    }

    /// Resets the scratch state to the empty time-0 engine state.
    // lint:allow(panic) reason="build_pred_base always pushes at least one offset"
    fn init_state(&mut self) {
        let num_pred_edges = *self.pred_base.last().expect("pred_base non-empty") as usize;
        self.k
            .reset(self.g, self.num_procs, self.num_channels, num_pred_edges);
        self.ready_at.fill(0);
        // Worst-case bound: every task can wait on one processor.
        let n = self.g.num_tasks();
        for w in &mut self.waiting {
            w.reserve(n);
        }
        self.rebuild_waiting();
    }

    /// Rebuilds the per-processor waiting lists from the kernel's ready
    /// set and the current run's mapping.
    fn rebuild_waiting(&mut self) {
        for w in &mut self.waiting {
            w.clear();
        }
        for &t in &self.k.ready {
            self.waiting[self.run_mapping[t as usize].index()].push(t);
        }
    }

    /// Restores the kernel state from baseline snapshot `idx` (state at
    /// an epoch trigger; the epoch itself re-runs). `with_ready_at`
    /// seeds the scratch ready times from the baseline — only commit
    /// re-runs need that (speculative candidates never read them).
    fn restore(&mut self, idx: usize, with_ready_at: bool) {
        let snap = std::mem::take(&mut self.base_snaps[idx]);
        let k = &mut self.k;
        k.now = snap.now;
        k.seq = snap.seq;
        k.events = snap.events;
        k.epoch_pending = true;
        k.heap.clear();
        for &e in &snap.heap {
            k.heap.push(e);
        }
        let mut off = 0usize;
        for (i, ps) in snap.procs.iter().enumerate() {
            let pr = &mut k.procs[i];
            pr.assigned = ps.assigned;
            pr.task = ps.task;
            pr.remaining = ps.remaining;
            pr.running_since = ps.running_since;
            pr.cur_oh = ps.cur_oh;
            pr.done_at = ps.done_at;
            pr.done_seq = ps.done_seq;
            pr.incoming.clear();
            pr.incoming.extend(
                snap.queue_items[off..off + ps.incoming_len as usize]
                    .iter()
                    .copied(),
            );
            off += ps.incoming_len as usize;
            pr.sends.clear();
            pr.sends.extend(
                snap.queue_items[off..off + ps.sends_len as usize]
                    .iter()
                    .copied(),
            );
            off += ps.sends_len as usize;
        }
        let mut coff = 0usize;
        for (i, (&busy, &len)) in snap.chan_busy.iter().zip(&snap.chan_lens).enumerate() {
            let ch = &mut k.channels[i];
            ch.busy = busy;
            ch.queue.clear();
            ch.queue
                .extend(snap.chan_items[coff..coff + len as usize].iter().copied());
            coff += len as usize;
        }
        k.live.clear();
        k.live_pos.fill(NONE);
        for &(id, meta, hop) in &snap.live_msgs {
            k.msgs[id as usize] = meta;
            k.msg_hop[id as usize] = hop;
            k.live_pos[id as usize] = k.live.len() as u32;
            k.live.push(id);
        }
        k.placement.clone_from(&snap.placement);
        k.unfinished.clone_from(&snap.unfinished);
        k.pending.clone_from(&snap.pending);
        k.ready.clone_from(&snap.ready);
        k.finished = snap.finished;
        k.max_finish = snap.max_finish;
        k.reg_cache_valid = false;
        if with_ready_at {
            self.ready_at.clone_from(&self.base_ready_at);
        }
        self.base_snaps[idx] = snap;
        // Derived state: depends on the mapping, which the caller set
        // (`run_mapping`) before restoring.
        self.rebuild_waiting();
    }

    /// Runs the kernel with the fixed-mapping driver. With `record`,
    /// the baseline timeline captures a snapshot at every scheduling
    /// epoch.
    fn run(&mut self, record: bool) -> Result<SimTime, SimError> {
        let ctx = KernelCtx {
            g: self.g,
            params: &self.params,
            comm_enabled: self.comm_enabled,
            max_events: self.max_events,
            routes: &self.routes,
            pred_base: &self.pred_base,
        };
        let mut driver = FixedDriver {
            order: &self.order,
            mapping: &self.run_mapping,
            waiting: &mut self.waiting,
            ready_at: &mut self.ready_at,
            record,
            base_snaps: &mut self.base_snaps,
            snap_pool: &mut self.snap_pool,
        };
        self.k.run(&ctx, &mut driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixedMapping;
    use crate::simulate;
    use anneal_graph::generate::{layered_random, LayeredConfig, Range};
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_topology::builders::{bus, hypercube, linear, ring, shared_bus, star};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    fn replay(
        g: &TaskGraph,
        topo: &Topology,
        params: &CommParams,
        cfg: &SimConfig,
        mapping: &[ProcId],
        order: &[u64],
    ) -> SimTime {
        let mut s = FixedMapping::new(mapping.to_vec()).with_order(order.to_vec());
        simulate(g, topo, params, &mut s, cfg).unwrap().makespan
    }

    fn sample_graph(seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        layered_random(
            &LayeredConfig {
                layers: 4,
                width: 5,
                edge_prob: 0.4,
                load: Range::new(us(1.0), us(40.0)),
                comm: Range::new(us(0.5), us(8.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn matches_engine_on_fresh_mappings() {
        let g = sample_graph(3);
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        for topo in [hypercube(3), ring(5), star(4), shared_bus(4), linear(3)] {
            let np = topo.num_procs();
            let params = CommParams::paper();
            let cfg = SimConfig::default();
            let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..6 {
                let mapping: Vec<ProcId> = (0..g.num_tasks())
                    .map(|_| p(rng.gen_range(0..np)))
                    .collect();
                let fast = ev.reset(&mapping).unwrap();
                let slow = replay(&g, &topo, &params, &cfg, &mapping, &order);
                assert_eq!(fast, slow, "{}", topo.name());
            }
        }
    }

    #[test]
    fn incremental_moves_match_full_replay() {
        let g = sample_graph(7);
        let n = g.num_tasks();
        let topo = hypercube(3);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = (0..n as u64).rev().collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut mapping: Vec<ProcId> = (0..n).map(|i| p(i % 8)).collect();
        ev.reset(&mapping).unwrap();
        for step in 0..200 {
            let t = rng.gen_range(0..n);
            let expected;
            let got;
            if rng.gen_bool(0.5) {
                let q = rng.gen_range(0..8);
                let mut cand = mapping.clone();
                cand[t] = p(q);
                expected = replay(&g, &topo, &params, &cfg, &cand, &order);
                got = ev.eval_relocate(TaskId::from_index(t), p(q)).unwrap();
                if rng.gen_bool(0.6) {
                    ev.commit();
                    mapping = cand;
                }
            } else {
                let u = rng.gen_range(0..n);
                let mut cand = mapping.clone();
                cand.swap(t, u);
                expected = replay(&g, &topo, &params, &cfg, &cand, &order);
                got = ev
                    .eval_swap(TaskId::from_index(t), TaskId::from_index(u))
                    .unwrap();
                if rng.gen_bool(0.6) {
                    ev.commit();
                    mapping = cand;
                }
            }
            assert_eq!(got, expected, "step {step}");
            assert_eq!(ev.mapping(), mapping.as_slice(), "step {step}");
        }
    }

    #[test]
    fn no_comm_mode_matches_engine() {
        let g = sample_graph(5);
        let topo = bus(4);
        let params = CommParams::zero();
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        let mapping: Vec<ProcId> = (0..g.num_tasks()).map(|i| p(i % 4)).collect();
        let fast = ev.reset(&mapping).unwrap();
        assert_eq!(fast, replay(&g, &topo, &params, &cfg, &mapping, &order));
        // single processor serializes exactly
        let topo1 = linear(1);
        let mut ev1 = FixedEval::new(&g, &topo1, &params, &cfg, order).unwrap();
        let all0 = vec![p(0); g.num_tasks()];
        assert_eq!(ev1.reset(&all0).unwrap(), g.total_work());
    }

    #[test]
    fn zero_load_tasks_and_tiny_graphs() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(0);
        let c = b.add_task(us(5.0));
        let d = b.add_task(0);
        b.add_edge(a, c, us(2.0)).unwrap();
        b.add_edge(c, d, 0).unwrap();
        let g = b.build().unwrap();
        let topo = linear(2);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order = vec![0, 1, 2];
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        for mapping in [
            vec![p(0), p(1), p(0)],
            vec![p(0), p(0), p(1)],
            vec![p(1), p(0), p(0)],
        ] {
            assert_eq!(
                ev.reset(&mapping).unwrap(),
                replay(&g, &topo, &params, &cfg, &mapping, &order)
            );
        }
    }

    #[test]
    fn steady_state_move_evaluation_is_allocation_free_of_results() {
        // Smoke for buffer reuse: thousands of evaluations on one
        // evaluator must agree with the engine at the end of the chain.
        // (tests/alloc.rs pins the actual zero-allocation property with
        // a counting allocator.)
        let g = sample_graph(13);
        let n = g.num_tasks();
        let topo = ring(5);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = vec![0; n];
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mapping: Vec<ProcId> = (0..n).map(|i| p(i % 5)).collect();
        ev.reset(&mapping).unwrap();
        for _ in 0..2000 {
            let t = rng.gen_range(0..n);
            let q = rng.gen_range(0..5);
            ev.eval_relocate(TaskId::from_index(t), p(q)).unwrap();
            if rng.gen_bool(0.3) {
                ev.commit();
            }
        }
        let final_mapping = ev.mapping().to_vec();
        assert_eq!(
            ev.makespan(),
            replay(&g, &topo, &params, &cfg, &final_mapping, &order)
        );
        assert_eq!(ev.evaluations(), 2001);
    }

    #[test]
    fn invalid_mappings_are_rejected() {
        let g = sample_graph(1);
        let topo = bus(2);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order).unwrap();
        let short = vec![p(0); g.num_tasks() - 1];
        assert!(matches!(
            ev.reset(&short),
            Err(SimError::InvalidAssignment(_))
        ));
        let out_of_range = vec![p(7); g.num_tasks()];
        assert!(matches!(
            ev.reset(&out_of_range),
            Err(SimError::InvalidAssignment(_))
        ));
    }

    #[test]
    fn event_limit_is_enforced() {
        let g = sample_graph(1);
        let topo = linear(2);
        let params = CommParams::paper();
        let cfg = SimConfig {
            comm_enabled: true,
            max_events: 3,
        };
        let order: Vec<u64> = (0..g.num_tasks() as u64).collect();
        let mut ev = FixedEval::new(&g, &topo, &params, &cfg, order).unwrap();
        let mapping: Vec<ProcId> = (0..g.num_tasks()).map(|i| p(i % 2)).collect();
        assert_eq!(ev.reset(&mapping), Err(SimError::EventLimit));
    }
}
