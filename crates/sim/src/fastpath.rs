//! The shared fast-path scheduling kernel.
//!
//! PR 4's incremental evaluator ([`FixedEval`](crate::FixedEval))
//! proved that a specialized re-implementation of the discrete-event
//! engine — packed 16-byte events in a 4-ary heap, per-processor
//! compute-completion registers, precomputed all-pairs routes, and
//! fully reused buffers — prices fixed-mapping schedules several times
//! faster than [`simulate`](crate::simulate) while staying
//! bit-identical. But that machinery lived *inside* `eval.rs`, welded
//! to the fixed-mapping dispatch rule, so every other evaluation in the
//! workspace (heuristic portfolio entries, tournament and campaign
//! cells, adversarial-search candidates) still paid the general engine
//! path: a fresh route table, a fresh `BinaryHeap`, Gantt spans,
//! statistics and a fully allocated [`SimResult`](crate::SimResult) per
//! call — all to read one number.
//!
//! This module extracts the kernel into a shared home with two clients:
//!
//! * `KernelState` + the `Driver` trait (crate-private) — the engine
//!   state and event loop,
//!   parameterized over the *dispatch policy*. `FixedEval` plugs in its
//!   waiting-list dispatch (and its snapshot hooks); the fast path
//!   plugs in any [`OnlineScheduler`] behind the same epoch contract
//!   the general engine uses. There is exactly **one** implementation
//!   of the event heap, the route flattening and the σ/τ/transfer
//!   plumbing in the workspace.
//! * [`SimScratch`] + [`simulate_makespan`] — the public fast-path
//!   entry point: when a caller needs only the makespan (no Gantt, no
//!   trace, no statistics), it runs the kernel out of a reusable
//!   scratch instead of the general engine. Makespans are
//!   **bit-identical** to [`simulate`](crate::simulate) — same events,
//!   same tie-breaking, same σ/τ preemption and channel-FIFO
//!   contention, and the scheduler observes byte-for-byte the same
//!   [`EpochContext`] sequence — enforced by the proptest equivalence
//!   suite in `tests/proptests.rs` and the allocation-regression test
//!   in `tests/alloc.rs`.
//!
//! A [`SimScratch`] additionally caches route tables keyed by the
//! topology's channel matrix, so a worker thread sweeping tournament
//! cells across a rotation of host architectures rebuilds each route
//! table once, not once per cell. After warm-up, evaluating an
//! already-seen `(graph size, topology)` shape performs **zero heap
//! allocation**.
//!
//! The one intentional divergence from the general engine: stale
//! (preempted) completion timers never enter the event queue here, so
//! the `max_events` safety counter advances slightly slower than the
//! engine's on preemption-heavy runs. `SimError::EventLimit` can
//! therefore fire at different points; every other error and every
//! makespan agrees.

use std::collections::VecDeque;

use anneal_graph::{TaskGraph, TaskId};
use anneal_topology::{CommParams, ProcId, RouteTable, Topology};

use crate::engine::{link_occupancy_time, SimConfig, SimError};
use crate::scheduler::{EpochContext, OnlineScheduler};
use crate::SimTime;

pub(crate) const NONE: u32 = u32::MAX;
pub(crate) const NOT_RUNNING: SimTime = SimTime::MAX;

/// A heap entry is `(time, rest)` with
/// `rest = seq << 32 | kind << 30 | arg`: 16 bytes total, ordered by
/// `(time, seq)` since `seq` occupies the high bits — so pops replay
/// the engine's insertion-order tie-breaking exactly. `arg` is a
/// processor index for `OverheadDone` and a message (edge) id for
/// `TransferDone`; both fit 30 bits by the assertions at kernel setup.
/// `seq` is a per-run push counter; it cannot wrap because a run
/// processes at most `max_events` (and pushes at most a small multiple
/// of that before erroring).
pub(crate) type HeapEv = (SimTime, u64);

pub(crate) const KIND_OVERHEAD_DONE: u64 = 1;
pub(crate) const KIND_TRANSFER_DONE: u64 = 2;
pub(crate) const ARG_MASK: u64 = (1 << 30) - 1;

#[inline]
pub(crate) fn pack(seq: u64, kind: u64, arg: u32) -> u64 {
    debug_assert!(seq < (1 << 32) && (arg as u64) <= ARG_MASK);
    seq << 32 | kind << 30 | arg as u64
}

/// A 4-ary min-heap over `(time, rest)` pairs.
///
/// The event queue is the hottest structure in the kernel (every
/// simulated event is one push and one pop); a 4-ary layout halves the
/// tree depth of the resident ~10–40 events and keeps each node's
/// children in one cache line, which measures materially faster than
/// `std::collections::BinaryHeap` here. Ordering is the total order on
/// `(time, seq)` (seq lives in the high bits of `rest`), so pops
/// reproduce the engine's insertion-order tie-breaking exactly.
#[derive(Debug, Default)]
pub(crate) struct EventHeap {
    v: Vec<HeapEv>,
}

impl EventHeap {
    pub(crate) fn clear(&mut self) {
        self.v.clear();
    }

    #[inline]
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.v.first().map(|e| e.0)
    }

    #[inline]
    pub(crate) fn peek(&self) -> Option<&HeapEv> {
        self.v.first()
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, HeapEv> {
        self.v.iter()
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.v.len()
    }

    /// Guarantees capacity for `cap` resident events.
    pub(crate) fn reserve_total(&mut self, cap: usize) {
        if self.v.capacity() < cap {
            self.v.reserve(cap - self.v.len());
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, x: HeapEv) {
        let mut i = self.v.len();
        self.v.push(x);
        while i > 0 {
            let parent = (i - 1) >> 2;
            if self.v[parent] <= x {
                break;
            }
            self.v[i] = self.v[parent];
            i = parent;
        }
        self.v[i] = x;
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<HeapEv> {
        let len = self.v.len();
        if len == 0 {
            return None;
        }
        let top = self.v[0];
        let x = self.v[len - 1];
        self.v.truncate(len - 1);
        let len = len - 1;
        if len > 0 {
            let mut i = 0;
            loop {
                let first = (i << 2) + 1;
                if first >= len {
                    break;
                }
                let last = (first + 4).min(len);
                let mut m = first;
                for c in first + 1..last {
                    if self.v[c] < self.v[m] {
                        m = c;
                    }
                }
                if self.v[m] >= x {
                    break;
                }
                self.v[i] = self.v[m];
                i = m;
            }
            self.v[i] = x;
        }
        Some(top)
    }
}

/// σ/τ overhead kinds (send, intermediate route, destination receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OhKind {
    Send,
    Route,
    Receive,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Oh {
    pub(crate) kind: OhKind,
    pub(crate) dur: SimTime,
    pub(crate) msg: u32,
}

/// Mutable per-processor state (the engine's `Proc`, minus
/// statistics). Deliberately not `Clone`: snapshots flatten the queues
/// into shared arenas (`eval.rs`) instead of cloning nested
/// `VecDeque`s, which keeps snapshot buffers capacity-stable.
#[derive(Debug, Default)]
pub(crate) struct ProcState {
    pub(crate) assigned: u32,
    pub(crate) task: u32,
    pub(crate) remaining: SimTime,
    pub(crate) running_since: SimTime,
    pub(crate) cur_oh: Option<Oh>,
    pub(crate) incoming: VecDeque<Oh>,
    pub(crate) sends: VecDeque<Oh>,
    /// The compute-completion *register*: when a task is running, the
    /// time it will finish (`NOT_RUNNING` when idle or preempted) and
    /// the sequence number drawn when it was armed. Task completions
    /// never enter the event heap — the main loop merges the heap with
    /// these registers by `(time, seq)`, which yields exactly the order
    /// a heap-resident `TaskDone` would have had (the register draws
    /// its seq from the same counter a push would), while a preemption
    /// simply disarms the register instead of leaving a stale event to
    /// pop. `OverheadDone` needs no counterpart because nothing can
    /// preempt a running overhead (`pump` is a no-op while `cur_oh` is
    /// occupied), so overhead timers are never stale.
    pub(crate) done_at: SimTime,
    pub(crate) done_seq: u64,
}

impl ProcState {
    pub(crate) fn reset(&mut self) {
        self.assigned = NONE;
        self.task = NONE;
        self.remaining = 0;
        self.running_since = NOT_RUNNING;
        self.cur_oh = None;
        self.incoming.clear();
        self.sends.clear();
        self.done_at = NOT_RUNNING;
        self.done_seq = 0;
    }
}

/// Channel state; not `Clone` for the same snapshot-arena reason as
/// [`ProcState`].
#[derive(Debug, Default)]
pub(crate) struct ChanState {
    pub(crate) busy: bool,
    pub(crate) queue: VecDeque<u32>,
}

/// Message state, addressed by the *predecessor-edge id* of the edge it
/// carries (`pred_base[task] + k` for the task's `k`-th incoming edge).
/// Edge ids are stable across runs — unlike creation-order ids — so a
/// rejected candidate's messages can never corrupt slots that baseline
/// snapshots still reference: every slot a snapshot's in-flight set
/// names is rewritten from the snapshot itself on restore, and every
/// other slot is rewritten at assignment before it is read.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MsgMeta {
    pub(crate) dest_task: u32,
    pub(crate) src: u32,
    pub(crate) dest: u32,
    pub(crate) weight: SimTime,
}

/// Flattened all-pairs routes: for pair `s*P + d`, `route_procs` holds
/// the full hop chain (endpoints included) and `route_chans` the
/// channel of each hop. One indexed load per hop instead of a
/// `channel_of` lookup and a `Vec<ProcId>` route allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatRoutes {
    num_procs: usize,
    proc_off: Vec<u32>,
    chan_off: Vec<u32>,
    route_procs: Vec<u32>,
    route_chans: Vec<u32>,
}

impl FlatRoutes {
    /// Flattens a prebuilt route table over `topo`.
    pub(crate) fn build(topo: &Topology, routes: &RouteTable) -> Self {
        let mut out = FlatRoutes::default();
        out.rebuild(topo, routes);
        out
    }

    /// Re-flattens in place, reusing the buffers.
    // lint:allow(panic) reason="routes come from the routing table, so consecutive hops share a channel"
    pub(crate) fn rebuild(&mut self, topo: &Topology, routes: &RouteTable) {
        let np = topo.num_procs();
        self.num_procs = np;
        self.proc_off.clear();
        self.chan_off.clear();
        self.route_procs.clear();
        self.route_chans.clear();
        self.proc_off.push(0);
        self.chan_off.push(0);
        for s in 0..np {
            for d in 0..np {
                let path = routes.route(ProcId::from_index(s), ProcId::from_index(d));
                for w in path.windows(2) {
                    let ch = topo
                        .channel_of(w[0], w[1])
                        .expect("route hops are adjacent");
                    self.route_chans.push(ch.0);
                }
                self.route_procs.extend(path.iter().map(|p| p.raw()));
                self.proc_off.push(self.route_procs.len() as u32);
                self.chan_off.push(self.route_chans.len() as u32);
            }
        }
    }

    #[inline]
    pub(crate) fn hop_proc(&self, src: u32, dst: u32, hop: usize) -> u32 {
        let pair = src as usize * self.num_procs + dst as usize;
        self.route_procs[self.proc_off[pair] as usize + hop]
    }

    #[inline]
    pub(crate) fn hop_chan(&self, src: u32, dst: u32, hop: usize) -> u32 {
        let pair = src as usize * self.num_procs + dst as usize;
        self.route_chans[self.chan_off[pair] as usize + hop]
    }
}

/// The per-run inputs of a kernel run: everything immutable the event
/// loop needs. Borrowed separately from [`KernelState`] so a scratch
/// can persist across instances.
#[derive(Debug)]
pub(crate) struct KernelCtx<'a> {
    pub(crate) g: &'a TaskGraph,
    pub(crate) params: &'a CommParams,
    pub(crate) comm_enabled: bool,
    pub(crate) max_events: u64,
    pub(crate) routes: &'a FlatRoutes,
    /// `pred_base[t]` = first predecessor-edge id of task `t` (edge ids
    /// number the incoming edges of all tasks consecutively);
    /// `pred_base[n]` = total predecessor-edge count.
    pub(crate) pred_base: &'a [u32],
}

/// The dispatch policy and bookkeeping hooks of a kernel run.
///
/// The kernel owns the event plumbing (σ/τ overheads, channel FIFO,
/// preemption, completion registers); a driver decides **which ready
/// task each idle processor takes** at an epoch, and may mirror state
/// transitions for its own bookkeeping. `FixedEval`'s driver keeps
/// per-processor waiting lists and records snapshots; the fast path's
/// driver adapts any [`OnlineScheduler`].
pub(crate) trait Driver {
    /// Dispatch decisions for the current epoch: inspect `k` (notably
    /// `k.ready`, sorted by task id, and `k.procs[p].assigned == NONE`
    /// for idleness) and push `(task, proc)` pairs. Only called when at
    /// least one task is ready. Pairs must be valid: ready tasks, idle
    /// processors, pairwise distinct.
    fn dispatch(
        &mut self,
        k: &KernelState,
        ctx: &KernelCtx<'_>,
        out: &mut Vec<(u32, u32)>,
    ) -> Result<(), SimError>;

    /// Task `t` was assigned to processor `q` (removed from the ready
    /// set).
    fn task_assigned(&mut self, _t: u32, _q: u32) {}

    /// Task `t` became ready at time `now` (inserted into the ready
    /// set).
    fn task_ready(&mut self, _t: u32, _now: SimTime) {}

    /// Task `t` finished at time `now`.
    fn task_finished(&mut self, _t: u32, _now: SimTime) {}

    /// An epoch is about to run (state is exactly the pre-epoch state).
    fn epoch_begin(&mut self, _k: &KernelState) {}

    /// The epoch's assignments have been applied; `k.assign_buf` holds
    /// the decisions made.
    fn epoch_end(&mut self, _k: &KernelState) {}
}

/// The mutable engine state of one run: every buffer is reused across
/// runs (and, through [`SimScratch`], across instances). A
/// transliteration of the general engine's state minus Gantt spans and
/// statistics.
#[derive(Debug, Default)]
pub(crate) struct KernelState {
    pub(crate) now: SimTime,
    pub(crate) heap: EventHeap,
    pub(crate) seq: u64,
    pub(crate) events: u64,
    /// Dispatch epochs run. Plain always-on counters (this and the two
    /// below): one integer op per occurrence, no allocation, no effect
    /// on event ordering or RNG streams, so they stay live even with
    /// the recorder off.
    pub(crate) epochs: u64,
    /// Most events ever resident in the heap this run (completion
    /// registers excluded — they never enter the heap).
    pub(crate) heap_hwm: u64,
    /// Cross-processor messages created (= predecessor edges that
    /// actually traveled; same-processor dependencies are free).
    pub(crate) messages: u64,
    pub(crate) epoch_pending: bool,
    /// Logical processor count of the current run. `procs` never
    /// shrinks (shrinking would free warm queue buffers); entries at
    /// `num_procs..` are leftovers from a larger instance and must not
    /// be read — use [`KernelState::procs`] for iteration.
    pub(crate) num_procs: usize,
    /// Logical channel count of the current run (same never-shrink
    /// rule as `num_procs`).
    pub(crate) num_channels: usize,
    pub(crate) procs: Vec<ProcState>,
    pub(crate) channels: Vec<ChanState>,
    pub(crate) msgs: Vec<MsgMeta>,
    pub(crate) msg_hop: Vec<u32>,
    /// Edge ids of messages currently in flight, plus each live edge's
    /// position in that list (`NONE` when not live). Only used to bound
    /// what snapshots must capture.
    pub(crate) live: Vec<u32>,
    pub(crate) live_pos: Vec<u32>,
    pub(crate) placement: Vec<u32>,
    pub(crate) unfinished: Vec<u32>,
    pub(crate) pending: Vec<u32>,
    /// Ready, unassigned tasks; sorted by id.
    pub(crate) ready: Vec<u32>,
    pub(crate) finished: u32,
    pub(crate) max_finish: SimTime,
    pub(crate) assign_buf: Vec<(u32, u32)>,
    /// Cached minimum over the per-proc completion registers as
    /// `(done_at, done_seq, proc)`; `None` = no register armed. Marked
    /// stale (`reg_cache_valid = false`) whenever the cached processor
    /// disarms.
    pub(crate) reg_cache: Option<(SimTime, u64, u32)>,
    pub(crate) reg_cache_valid: bool,
}

impl KernelState {
    /// Resets to the empty time-0 engine state for a graph with
    /// `num_procs` processors, `num_channels` channels and
    /// `num_pred_edges` predecessor edges. Buffers are resized (growing
    /// allocates; an already-seen shape does not).
    pub(crate) fn reset(
        &mut self,
        g: &TaskGraph,
        num_procs: usize,
        num_channels: usize,
        num_pred_edges: usize,
    ) {
        self.now = 0;
        self.heap.clear();
        self.seq = 0;
        self.events = 0;
        self.epochs = 0;
        self.heap_hwm = 0;
        self.messages = 0;
        self.epoch_pending = true;
        // Buffers of buffers only grow: truncating would free the
        // deques a previous (larger) instance warmed up. Queue and heap
        // capacities are reserved to their exact worst cases up front —
        // every message (= predecessor edge) occupies at most one
        // overhead queue and at most one channel queue at a time, and
        // the heap holds at most one `OverheadDone` per processor plus
        // one `TransferDone` per channel — so a run can never allocate
        // mid-flight, no matter what states it reaches.
        self.num_procs = num_procs;
        self.num_channels = num_channels;
        if self.procs.len() < num_procs {
            self.procs.resize_with(num_procs, ProcState::default);
        }
        for pr in &mut self.procs[..num_procs] {
            pr.reset();
            pr.incoming.reserve(num_pred_edges);
            pr.sends.reserve(num_pred_edges);
        }
        if self.channels.len() < num_channels {
            self.channels.resize_with(num_channels, ChanState::default);
        }
        for ch in &mut self.channels[..num_channels] {
            ch.busy = false;
            ch.queue.clear();
            ch.queue.reserve(num_pred_edges);
        }
        self.heap.reserve_total(num_procs + num_channels);
        self.msgs.clear();
        self.msgs.resize(num_pred_edges, MsgMeta::default());
        self.msg_hop.clear();
        self.msg_hop.resize(num_pred_edges, 0);
        self.live.clear();
        self.live.reserve(num_pred_edges);
        self.live_pos.clear();
        self.live_pos.resize(num_pred_edges, NONE);
        let n = g.num_tasks();
        self.placement.clear();
        self.placement.resize(n, NONE);
        self.pending.clear();
        self.pending.resize(n, 0);
        self.unfinished.clear();
        self.unfinished.reserve(n);
        self.ready.clear();
        self.ready.reserve(n);
        self.assign_buf.reserve(num_procs);
        for t in g.tasks() {
            let d = g.in_degree(t) as u32;
            self.unfinished.push(d);
            if d == 0 {
                self.ready.push(t.index() as u32);
            }
        }
        self.finished = 0;
        self.max_finish = 0;
        self.assign_buf.clear();
        self.reg_cache_valid = false;
    }

    /// The current run's processors (excluding grown-but-unused
    /// leftover slots).
    #[inline]
    pub(crate) fn procs(&self) -> &[ProcState] {
        &self.procs[..self.num_procs]
    }

    /// The main event loop; a transliteration of the general engine's
    /// `run` with dispatch delegated to the driver.
    // lint:allow(panic) reason="`reg` was checked Some on the use_reg branches"
    pub(crate) fn run<D: Driver>(
        &mut self,
        ctx: &KernelCtx<'_>,
        driver: &mut D,
    ) -> Result<SimTime, SimError> {
        loop {
            let reg = self.min_register();
            if self.epoch_pending {
                let heap_next = self.heap.peek_time();
                let next = match (heap_next, reg) {
                    (Some(h), Some((r, _, _))) => Some(h.min(r)),
                    (h, r) => h.or(r.map(|(t, _, _)| t)),
                };
                if next.is_none_or(|t| t > self.now) {
                    self.epoch_pending = false;
                    self.epochs += 1;
                    driver.epoch_begin(self);
                    self.run_epoch(ctx, driver)?;
                    driver.epoch_end(self);
                    continue;
                }
            }
            // Pop the global (time, seq) minimum across the event heap
            // and the completion registers — exactly the order one
            // merged heap would produce.
            let use_reg = match (self.heap.peek(), reg) {
                (Some(&(ht, hr)), Some((rt, rs, _))) => (rt, rs) < (ht, hr >> 32),
                (None, Some(_)) => true,
                _ => false,
            };
            let (time, rest) = if use_reg {
                let (rt, _, rp) = reg.expect("register selected");
                self.procs[rp as usize].done_at = NOT_RUNNING;
                self.reg_cache_valid = false;
                (rt, None)
            } else {
                match self.heap.pop() {
                    Some((t, r)) => (t, Some(r)),
                    None => break,
                }
            };
            self.events += 1;
            if self.events > ctx.max_events {
                return Err(SimError::EventLimit);
            }
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            match rest {
                None => {
                    let (_, _, rp) = reg.expect("register selected");
                    self.on_task_done(rp, ctx, driver);
                }
                Some(rest) => {
                    let arg = (rest & ARG_MASK) as u32;
                    if (rest >> 30) & 0b11 == KIND_OVERHEAD_DONE {
                        self.on_overhead_done(arg, ctx);
                    } else {
                        self.on_transfer_done(arg, ctx);
                    }
                }
            }
        }
        if (self.finished as usize) < ctx.g.num_tasks() {
            let idle = self.procs().iter().filter(|p| p.assigned == NONE).count();
            return Err(SimError::Deadlock {
                time: self.now,
                ready: self.ready.len(),
                idle,
            });
        }
        Ok(self.max_finish)
    }

    #[inline]
    fn push_ev(&mut self, time: SimTime, kind: u64, arg: u32) {
        self.heap.push((time, pack(self.seq, kind, arg)));
        self.seq += 1;
        self.heap_hwm = self.heap_hwm.max(self.heap.len() as u64);
    }

    /// Dispatch epoch: the driver picks assignments, the kernel applies
    /// them. The driver is only consulted when a task is ready,
    /// matching the general engine's early return.
    fn run_epoch<D: Driver>(
        &mut self,
        ctx: &KernelCtx<'_>,
        driver: &mut D,
    ) -> Result<(), SimError> {
        let mut buf = std::mem::take(&mut self.assign_buf);
        buf.clear();
        let res = if self.ready.is_empty() {
            Ok(())
        } else {
            driver.dispatch(self, ctx, &mut buf)
        };
        if res.is_ok() {
            for &(t, p) in &buf {
                self.assign(t, p, ctx, driver);
            }
        }
        self.assign_buf = buf;
        res
    }

    // lint:allow(panic) reason="schedulers only assign ready tasks"
    fn assign<D: Driver>(&mut self, t: u32, q: u32, ctx: &KernelCtx<'_>, driver: &mut D) {
        self.placement[t as usize] = q;
        self.procs[q as usize].assigned = t;
        let pos = self.ready.binary_search(&t).expect("task was ready");
        self.ready.remove(pos);
        driver.task_assigned(t, q);

        let g = ctx.g;
        let tid = TaskId::from_index(t as usize);
        let mut pending = 0u32;
        if ctx.comm_enabled {
            let sigma = ctx.params.sigma;
            for (k, e) in g.predecessors(tid).iter().enumerate() {
                let src = self.placement[e.target.index()];
                debug_assert!(src != NONE, "predecessor finished");
                if src == q {
                    continue;
                }
                let msg_id = ctx.pred_base[t as usize] + k as u32;
                self.msgs[msg_id as usize] = MsgMeta {
                    dest_task: t,
                    src,
                    dest: q,
                    weight: link_occupancy_time(ctx.params, e.weight),
                };
                self.msg_hop[msg_id as usize] = 0;
                debug_assert_eq!(self.live_pos[msg_id as usize], NONE);
                self.live_pos[msg_id as usize] = self.live.len() as u32;
                self.live.push(msg_id);
                pending += 1;
                self.enqueue_overhead(
                    src,
                    Oh {
                        kind: OhKind::Send,
                        dur: sigma,
                        msg: msg_id,
                    },
                );
            }
        }
        self.pending[t as usize] = pending;
        self.messages += u64::from(pending);
        if pending == 0 {
            let pr = &mut self.procs[q as usize];
            debug_assert_eq!(pr.task, NONE);
            pr.task = t;
            pr.remaining = g.load(tid);
            pr.running_since = NOT_RUNNING;
            self.pump(q);
        }
    }

    pub(crate) fn enqueue_overhead(&mut self, p: u32, oh: Oh) {
        let pr = &mut self.procs[p as usize];
        match oh.kind {
            OhKind::Send => pr.sends.push_back(oh),
            _ => pr.incoming.push_back(oh),
        }
        self.pump(p);
    }

    /// Keeps processor `p` busy with the right thing (the engine's
    /// `pump`): pending overheads preempt compute; otherwise compute
    /// (re)starts.
    pub(crate) fn pump(&mut self, p: u32) {
        let now = self.now;
        let pr = &mut self.procs[p as usize];
        if pr.cur_oh.is_some() {
            return;
        }
        let next = pr.incoming.pop_front().or_else(|| pr.sends.pop_front());
        if let Some(oh) = next {
            if pr.task != NONE && pr.running_since != NOT_RUNNING {
                let done = now - pr.running_since;
                pr.remaining -= done;
                pr.running_since = NOT_RUNNING;
                pr.done_at = NOT_RUNNING; // disarm the completion register
                self.disarm_cache(p);
            }
            let pr = &mut self.procs[p as usize];
            pr.cur_oh = Some(oh);
            let at = now + oh.dur;
            self.push_ev(at, KIND_OVERHEAD_DONE, p);
            return;
        }
        if pr.task != NONE && pr.running_since == NOT_RUNNING {
            pr.running_since = now;
            let at = now + pr.remaining;
            let seq = self.seq;
            self.seq += 1;
            let pr = &mut self.procs[p as usize];
            pr.done_at = at;
            pr.done_seq = seq;
            self.arm_cache(at, seq, p);
        }
    }

    /// Cache maintenance: a newly armed register can only tighten the
    /// cached minimum.
    #[inline]
    fn arm_cache(&mut self, at: SimTime, seq: u64, p: u32) {
        if self.reg_cache_valid {
            if let Some((ct, cs, _)) = self.reg_cache {
                if (at, seq) < (ct, cs) {
                    self.reg_cache = Some((at, seq, p));
                }
            } else {
                self.reg_cache = Some((at, seq, p));
            }
        }
    }

    /// Cache maintenance: disarming the cached processor invalidates
    /// the cache (any other processor leaves the minimum intact).
    #[inline]
    fn disarm_cache(&mut self, p: u32) {
        if self.reg_cache_valid && matches!(self.reg_cache, Some((_, _, cp)) if cp == p) {
            self.reg_cache_valid = false;
        }
    }

    /// The minimum completion register as `(time, seq, proc)`.
    #[inline]
    pub(crate) fn min_register(&mut self) -> Option<(SimTime, u64, u32)> {
        if !self.reg_cache_valid {
            let mut min: Option<(SimTime, u64, u32)> = None;
            for (i, pr) in self.procs[..self.num_procs].iter().enumerate() {
                if pr.done_at != NOT_RUNNING
                    && min.is_none_or(|(t, s, _)| (pr.done_at, pr.done_seq) < (t, s))
                {
                    min = Some((pr.done_at, pr.done_seq, i as u32));
                }
            }
            self.reg_cache = min;
            self.reg_cache_valid = true;
        }
        self.reg_cache
    }

    fn channel_push(&mut self, msg_id: u32, ctx: &KernelCtx<'_>) {
        let m = self.msgs[msg_id as usize];
        let hop = self.msg_hop[msg_id as usize] as usize;
        let ch = ctx.routes.hop_chan(m.src, m.dest, hop) as usize;
        if self.channels[ch].busy {
            self.channels[ch].queue.push_back(msg_id);
        } else {
            self.channels[ch].busy = true;
            let at = self.now + m.weight;
            self.push_ev(at, KIND_TRANSFER_DONE, msg_id);
        }
    }

    fn on_transfer_done(&mut self, msg_id: u32, ctx: &KernelCtx<'_>) {
        // Free the channel and start the next queued transfer.
        let m = self.msgs[msg_id as usize];
        let hop = self.msg_hop[msg_id as usize] as usize;
        let ch = ctx.routes.hop_chan(m.src, m.dest, hop) as usize;
        self.channels[ch].busy = false;
        if let Some(next) = self.channels[ch].queue.pop_front() {
            self.channels[ch].busy = true;
            let at = self.now + self.msgs[next as usize].weight;
            self.push_ev(at, KIND_TRANSFER_DONE, next);
        }
        // Advance the message.
        self.msg_hop[msg_id as usize] += 1;
        let v = ctx.routes.hop_proc(m.src, m.dest, hop + 1);
        let tau = ctx.params.tau;
        let kind = if v == m.dest {
            OhKind::Receive
        } else {
            OhKind::Route
        };
        self.enqueue_overhead(
            v,
            Oh {
                kind,
                dur: tau,
                msg: msg_id,
            },
        );
    }

    // lint:allow(panic) reason="overhead timers are only armed with a current overhead in place"
    fn on_overhead_done(&mut self, p: u32, ctx: &KernelCtx<'_>) {
        let oh = self.procs[p as usize]
            .cur_oh
            .take()
            .expect("overhead timer fired without current overhead");
        match oh.kind {
            OhKind::Send | OhKind::Route => self.channel_push(oh.msg, ctx),
            OhKind::Receive => self.deliver(oh.msg, ctx),
        }
        self.pump(p);
    }

    fn deliver(&mut self, msg_id: u32, ctx: &KernelCtx<'_>) {
        // The message is done: drop it from the live set.
        let pos = self.live_pos[msg_id as usize] as usize;
        debug_assert_eq!(self.live[pos], msg_id);
        self.live.swap_remove(pos);
        self.live_pos[msg_id as usize] = NONE;
        if let Some(&moved) = self.live.get(pos) {
            self.live_pos[moved as usize] = pos as u32;
        }
        let t = self.msgs[msg_id as usize].dest_task;
        let c = &mut self.pending[t as usize];
        debug_assert!(*c > 0);
        *c -= 1;
        if *c == 0 {
            let q = self.placement[t as usize];
            let load = ctx.g.load(TaskId::from_index(t as usize));
            let pr = &mut self.procs[q as usize];
            debug_assert_eq!(pr.task, NONE);
            pr.task = t;
            pr.remaining = load;
            pr.running_since = NOT_RUNNING;
            self.pump(q);
        }
    }

    /// Fires when a completion register is popped; never stale (a
    /// preemption disarms the register instead).
    fn on_task_done<D: Driver>(&mut self, p: u32, ctx: &KernelCtx<'_>, driver: &mut D) {
        let pr = &mut self.procs[p as usize];
        let t = pr.task;
        debug_assert!(t != NONE && pr.running_since != NOT_RUNNING);
        pr.task = NONE;
        pr.remaining = 0;
        pr.running_since = NOT_RUNNING;
        pr.assigned = NONE;
        if self.now > self.max_finish {
            self.max_finish = self.now;
        }
        self.finished += 1;
        let now = self.now;
        driver.task_finished(t, now);
        for e in ctx.g.successors(TaskId::from_index(t as usize)) {
            let c = &mut self.unfinished[e.target.index()];
            *c -= 1;
            if *c == 0 {
                let tid = e.target.index() as u32;
                let pos = self.ready.partition_point(|&x| x < tid);
                self.ready.insert(pos, tid);
                driver.task_ready(tid, now);
            }
        }
        self.epoch_pending = true;
        self.pump(p);
    }
}

/// Fills `pred_base` (length `n + 1`) for `g`: consecutive
/// predecessor-edge ids per task, total count last.
pub(crate) fn build_pred_base(g: &TaskGraph, out: &mut Vec<u32>) {
    out.clear();
    let mut acc = 0u32;
    for t in g.tasks() {
        out.push(acc);
        acc += g.in_degree(t) as u32;
    }
    out.push(acc);
}

/// The always-on counters of one kernel run, readable from
/// [`SimScratch::last_run_stats`] after a [`simulate_makespan`] call
/// (and mirrored on [`SimResult`](crate::SimResult) by the general
/// engine as [`RunObs`](crate::RunObs)). All four are deterministic:
/// pure functions of `(graph, topology, params, scheduler, config)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelRunStats {
    /// Events popped from the merged queue (heap + registers).
    pub events: u64,
    /// Dispatch epochs run.
    pub epochs: u64,
    /// Most events ever resident in the event heap.
    pub heap_hwm: u64,
    /// Cross-processor messages created.
    pub messages: u64,
}

impl KernelRunStats {
    /// Accumulates this run into `r`: counters `sim.kernel.events`,
    /// `sim.kernel.epochs`, `sim.kernel.messages` and gauge
    /// `sim.kernel.heap_hwm`.
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sim.kernel.events", self.events);
        r.add("sim.kernel.epochs", self.epochs);
        r.add("sim.kernel.messages", self.messages);
        r.hwm("sim.kernel.heap_hwm", self.heap_hwm);
    }
}

impl KernelState {
    pub(crate) fn run_stats(&self) -> KernelRunStats {
        KernelRunStats {
            events: self.events,
            epochs: self.epochs,
            heap_hwm: self.heap_hwm,
            messages: self.messages,
        }
    }
}

/// Route-table cache counters of a [`SimScratch`] (see
/// [`SimScratch::route_cache_stats`]). **Scheduling-dependent**, not
/// deterministic: which worker's scratch sees which topology depends on
/// how cells were divided among threads, so only the totals at a fixed
/// execution plan are stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build (flatten + route) a new table — the
    /// expensive miss, counted separately from pool-level scratch
    /// misses upstream.
    pub builds: u64,
}

impl RouteCacheStats {
    /// Accumulates into `r` as `sched.route_cache.hits` /
    /// `sched.route_cache.builds` counters.
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sched.route_cache.hits", self.hits);
        r.add("sched.route_cache.builds", self.builds);
    }
}

/// One cached route table: the channel matrix it was built from (the
/// fingerprint — routing and contention depend on nothing else), the
/// route table itself (schedulers read it through
/// [`EpochContext::routes`]) and its flattened form for the kernel.
#[derive(Debug)]
struct CachedRoutes {
    num_procs: usize,
    num_channels: usize,
    /// `channel_of(a, b)` for every ordered pair, `u32::MAX` = none.
    chan_matrix: Vec<u32>,
    table: RouteTable,
    flat: FlatRoutes,
}

/// Reusable state for [`simulate_makespan`]: every buffer of the
/// fast-path kernel, plus a small cache of route tables keyed by the
/// topology's channel matrix.
///
/// Create one per worker thread and reuse it across evaluations; after
/// the first call per `(graph size, topology)` shape, evaluations
/// perform no heap allocation (enforced by `tests/alloc.rs`). A scratch
/// is cheap to create (empty buffers), so dropping one between batches
/// only costs re-warming.
#[derive(Debug, Default)]
pub struct SimScratch {
    kernel: KernelState,
    routes: Vec<CachedRoutes>,
    route_hits: u64,
    route_builds: u64,
    pred_base: Vec<u32>,
    fingerprint: Vec<u32>,
    // OnlineDriver buffers.
    placement: Vec<Option<ProcId>>,
    finish: Vec<Option<SimTime>>,
    ready: Vec<TaskId>,
    idle: Vec<ProcId>,
    out: Vec<(TaskId, ProcId)>,
    used_task: Vec<bool>,
    used_proc: Vec<bool>,
}

/// Route caches kept per scratch before the oldest half is evicted;
/// far above any topology rotation in the workspace (the campaign
/// family sweeps 8).
const ROUTE_CACHE_CAP: usize = 32;

impl SimScratch {
    /// An empty scratch (no buffers warmed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the cached route entry for `topo`, building (and
    /// caching) it on a miss. Two topologies with the same channel
    /// matrix route and contend identically, so the cache key is the
    /// matrix, not the name.
    fn route_entry(&mut self, topo: &Topology) -> Result<usize, SimError> {
        let np = topo.num_procs();
        self.fingerprint.clear();
        for a in 0..np {
            for b in 0..np {
                self.fingerprint.push(
                    topo.channel_of(ProcId::from_index(a), ProcId::from_index(b))
                        .map_or(u32::MAX, |c| c.0),
                );
            }
        }
        if let Some(i) = self.routes.iter().position(|e| {
            e.num_procs == np
                && e.num_channels == topo.num_channels()
                && e.chan_matrix == self.fingerprint
        }) {
            self.route_hits += 1;
            return Ok(i);
        }
        self.route_builds += 1;
        let table = RouteTable::build(topo).map_err(|e| SimError::Disconnected(e.to_string()))?;
        let flat = FlatRoutes::build(topo, &table);
        if self.routes.len() >= ROUTE_CACHE_CAP {
            self.routes.drain(..ROUTE_CACHE_CAP / 2);
        }
        self.routes.push(CachedRoutes {
            num_procs: np,
            num_channels: topo.num_channels(),
            chan_matrix: self.fingerprint.clone(),
            table,
            flat,
        });
        Ok(self.routes.len() - 1)
    }

    /// The counters of the most recent [`simulate_makespan`] run out of
    /// this scratch (zeroed state before any run).
    pub fn last_run_stats(&self) -> KernelRunStats {
        self.kernel.run_stats()
    }

    /// Lifetime route-table cache counters of this scratch.
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.route_hits,
            builds: self.route_builds,
        }
    }
}

/// Adapts an [`OnlineScheduler`] to the kernel's [`Driver`] contract,
/// mirroring exactly the state the general engine exposes through
/// [`EpochContext`].
struct OnlineDriver<'a> {
    sched: &'a mut dyn OnlineScheduler,
    topo: &'a Topology,
    table: &'a RouteTable,
    placement: &'a mut Vec<Option<ProcId>>,
    finish: &'a mut Vec<Option<SimTime>>,
    ready: &'a mut Vec<TaskId>,
    idle: &'a mut Vec<ProcId>,
    out: &'a mut Vec<(TaskId, ProcId)>,
    used_task: &'a mut [bool],
    used_proc: &'a mut [bool],
}

impl Driver for OnlineDriver<'_> {
    fn dispatch(
        &mut self,
        k: &KernelState,
        ctx: &KernelCtx<'_>,
        out: &mut Vec<(u32, u32)>,
    ) -> Result<(), SimError> {
        // The engine consults the scheduler only when both sides are
        // non-empty; the kernel already guarantees a non-empty ready
        // set.
        self.idle.clear();
        self.idle.extend(
            k.procs()
                .iter()
                .enumerate()
                .filter(|(_, pr)| pr.assigned == NONE)
                .map(|(i, _)| ProcId::from_index(i)),
        );
        if self.idle.is_empty() {
            return Ok(());
        }
        self.ready.clear();
        self.ready
            .extend(k.ready.iter().map(|&t| TaskId::from_index(t as usize)));
        self.out.clear();
        {
            let ectx = EpochContext {
                time: k.now,
                ready: self.ready,
                idle: self.idle,
                graph: ctx.g,
                topology: self.topo,
                routes: self.table,
                params: ctx.params,
                placement: self.placement,
                finish: self.finish,
                comm_enabled: ctx.comm_enabled,
            };
            self.sched.on_epoch(&ectx, self.out);
        }
        // Validate, replicating the engine's checks and messages.
        let np = self.used_proc.len();
        let mut res = Ok(());
        let mut marked = 0usize;
        for &(t, p) in self.out.iter() {
            if t.index() >= self.used_task.len()
                || k.ready.binary_search(&(t.index() as u32)).is_err()
            {
                res = Err(SimError::InvalidAssignment(format!("{t} is not ready")));
                break;
            }
            if p.index() >= np || k.procs[p.index()].assigned != NONE {
                res = Err(SimError::InvalidAssignment(format!("{p} is not idle")));
                break;
            }
            if self.used_task[t.index()] {
                res = Err(SimError::InvalidAssignment(format!("{t} assigned twice")));
                break;
            }
            self.used_task[t.index()] = true;
            if self.used_proc[p.index()] {
                res = Err(SimError::InvalidAssignment(format!(
                    "{p} received two tasks"
                )));
                break;
            }
            self.used_proc[p.index()] = true;
            marked += 1;
        }
        for &(t, p) in self.out.iter().take(marked) {
            self.used_task[t.index()] = false;
            self.used_proc[p.index()] = false;
        }
        res?;
        out.extend(
            self.out
                .iter()
                .map(|&(t, p)| (t.index() as u32, p.index() as u32)),
        );
        Ok(())
    }

    fn task_assigned(&mut self, t: u32, q: u32) {
        self.placement[t as usize] = Some(ProcId::from_index(q as usize));
    }

    fn task_finished(&mut self, t: u32, now: SimTime) {
        self.finish[t as usize] = Some(now);
    }
}

/// Simulates `graph` on `topology` driven by `scheduler` and returns
/// **only the makespan** — the fast path for the thousands of
/// evaluations (tournament cells, campaign cells, adversarial-search
/// candidates) that never read a Gantt chart, a trace or statistics.
///
/// Bit-identical to [`simulate`](crate::simulate)'s
/// `SimResult::makespan` for every scheduler: the scheduler observes
/// the same [`EpochContext`] sequence, assignments are validated the
/// same way, and event ordering (σ/τ preemption, channel FIFO,
/// insertion-order tie-breaking) is reproduced exactly. The only
/// divergence is *when* `SimError::EventLimit` can fire, because stale
/// preempted timers never enter this queue (see the module docs).
///
/// `scratch` carries every buffer and a route-table cache across
/// calls; reuse one per worker thread for zero steady-state allocation.
pub fn simulate_makespan(
    graph: &TaskGraph,
    topology: &Topology,
    params: &CommParams,
    scheduler: &mut dyn OnlineScheduler,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> Result<SimTime, SimError> {
    let np = topology.num_procs();
    let ri = scratch.route_entry(topology)?;
    let SimScratch {
        kernel,
        routes,
        pred_base,
        placement,
        finish,
        ready,
        idle,
        out,
        used_task,
        used_proc,
        ..
    } = scratch;
    let entry = &routes[ri];
    build_pred_base(graph, pred_base);
    // lint:allow(panic) reason="build_pred_base always pushes at least one offset"
    let num_pred_edges = *pred_base.last().expect("pred_base is non-empty") as usize;
    // Packed-event ids: `arg` carries a processor index (OverheadDone)
    // or a predecessor-edge id (TransferDone), both in 30 bits.
    assert!(
        np <= ARG_MASK as usize && num_pred_edges <= ARG_MASK as usize,
        "instance exceeds the packed-event id space"
    );
    kernel.reset(graph, np, topology.num_channels(), num_pred_edges);
    let n = graph.num_tasks();
    placement.clear();
    placement.resize(n, None);
    finish.clear();
    finish.resize(n, None);
    used_task.clear();
    used_task.resize(n, false);
    used_proc.clear();
    used_proc.resize(np, false);
    let ctx = KernelCtx {
        g: graph,
        params,
        comm_enabled: config.comm_enabled,
        max_events: config.max_events,
        routes: &entry.flat,
        pred_base,
    };
    let mut driver = OnlineDriver {
        sched: scheduler,
        topo: topology,
        table: &entry.table,
        placement,
        finish,
        ready,
        idle,
        out,
        used_task,
        used_proc,
    };
    kernel.run(&ctx, &mut driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::scheduler::{FixedMapping, GreedyScheduler};
    use anneal_graph::generate::{layered_random, LayeredConfig, Range};
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_topology::builders::{bus, hypercube, linear, ring, shared_bus, star};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    fn sample_graph(seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        layered_random(
            &LayeredConfig {
                layers: 4,
                width: 5,
                edge_prob: 0.4,
                load: Range::new(us(1.0), us(40.0)),
                comm: Range::new(us(0.5), us(8.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn greedy_matches_engine_across_topologies_with_one_scratch() {
        let mut scratch = SimScratch::new();
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        for seed in [1, 2, 3] {
            let g = sample_graph(seed);
            for topo in [hypercube(3), ring(5), star(4), shared_bus(4), linear(3)] {
                let slow = simulate(&g, &topo, &params, &mut GreedyScheduler, &cfg)
                    .unwrap()
                    .makespan;
                let fast =
                    simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch)
                        .unwrap();
                assert_eq!(fast, slow, "seed {seed} on {}", topo.name());
            }
        }
        // The five distinct topologies (ring(5) and star(4) etc.) are
        // all cached now.
        assert!(scratch.routes.len() >= 4);
    }

    #[test]
    fn fixed_mapping_matches_engine() {
        let g = sample_graph(7);
        let n = g.num_tasks();
        let topo = hypercube(3);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let mut scratch = SimScratch::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..8 {
            let mapping: Vec<ProcId> = (0..n).map(|_| p(rng.gen_range(0..8))).collect();
            let slow = simulate(
                &g,
                &topo,
                &params,
                &mut FixedMapping::new(mapping.clone()),
                &cfg,
            )
            .unwrap()
            .makespan;
            let fast = simulate_makespan(
                &g,
                &topo,
                &params,
                &mut FixedMapping::new(mapping),
                &cfg,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn no_comm_mode_matches_engine() {
        let g = sample_graph(5);
        let topo = bus(4);
        let params = CommParams::zero();
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let mut scratch = SimScratch::new();
        let slow = simulate(&g, &topo, &params, &mut GreedyScheduler, &cfg)
            .unwrap()
            .makespan;
        let fast = simulate_makespan(&g, &topo, &params, &mut GreedyScheduler, &cfg, &mut scratch)
            .unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn deadlock_and_invalid_assignments_error_like_the_engine() {
        struct Lazy;
        impl OnlineScheduler for Lazy {
            fn on_epoch(&mut self, _: &EpochContext<'_>, _: &mut Vec<(TaskId, ProcId)>) {}
        }
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(us(10.0));
        let c = b.add_task(us(20.0));
        b.add_edge(a, c, us(4.0)).unwrap();
        let g = b.build().unwrap();
        let mut scratch = SimScratch::new();
        let err = simulate_makespan(
            &g,
            &bus(2),
            &CommParams::paper(),
            &mut Lazy,
            &SimConfig::default(),
            &mut scratch,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Deadlock {
                    ready: 1,
                    idle: 2,
                    ..
                }
            ),
            "{err}"
        );

        struct Bad(u8);
        impl OnlineScheduler for Bad {
            fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
                match self.0 {
                    0 => out.push((TaskId::from_index(99), ctx.idle[0])),
                    1 => {
                        out.push((ctx.ready[0], ctx.idle[0]));
                        out.push((ctx.ready[1], ctx.idle[0]));
                    }
                    _ => {
                        out.push((ctx.ready[0], ctx.idle[0]));
                        out.push((ctx.ready[0], ctx.idle[1]));
                    }
                }
            }
        }
        let mut bld = TaskGraphBuilder::new();
        bld.add_task(us(1.0));
        bld.add_task(us(1.0));
        let g2 = bld.build().unwrap();
        for mode in 0..3u8 {
            let err = simulate_makespan(
                &g2,
                &bus(2),
                &CommParams::paper(),
                &mut Bad(mode),
                &SimConfig::default(),
                &mut scratch,
            )
            .unwrap_err();
            assert!(matches!(err, SimError::InvalidAssignment(_)), "{err}");
        }
        // the scratch survives failed runs
        let ok = simulate_makespan(
            &g2,
            &bus(2),
            &CommParams::paper(),
            &mut GreedyScheduler,
            &SimConfig::default(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(ok, us(1.0));
    }

    #[test]
    fn event_limit_is_enforced() {
        let g = sample_graph(1);
        let cfg = SimConfig {
            comm_enabled: true,
            max_events: 3,
        };
        let mut scratch = SimScratch::new();
        let err = simulate_makespan(
            &g,
            &linear(2),
            &CommParams::paper(),
            &mut GreedyScheduler,
            &cfg,
            &mut scratch,
        )
        .unwrap_err();
        assert_eq!(err, SimError::EventLimit);
    }

    #[test]
    fn route_cache_keys_on_channel_matrix_not_name() {
        let mut scratch = SimScratch::new();
        let g = sample_graph(2);
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let a = Topology::from_edges("first", 3, &[(0, 1), (1, 2)]);
        let b = Topology::from_edges("second", 3, &[(0, 1), (1, 2)]);
        simulate_makespan(&g, &a, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        simulate_makespan(&g, &b, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        assert_eq!(scratch.routes.len(), 1, "same channel matrix, one entry");
        let c = Topology::from_edges("third", 3, &[(0, 1), (1, 2), (0, 2)]);
        simulate_makespan(&g, &c, &params, &mut GreedyScheduler, &cfg, &mut scratch).unwrap();
        assert_eq!(scratch.routes.len(), 2);
    }

    #[test]
    fn stateful_scheduler_sees_identical_epoch_sequence() {
        // A scheduler that folds everything it observes into a running
        // hash: any divergence in the EpochContext sequence (epoch
        // times, ready sets, idle sets, placements, finishes) between
        // the engine and the fast path changes the hash and therefore
        // the dispatch decisions and the makespan.
        #[derive(Default)]
        struct Hashing {
            h: u64,
        }
        impl Hashing {
            fn mix(&mut self, v: u64) {
                let mut z = self.h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                self.h = z ^ (z >> 31);
            }
        }
        impl OnlineScheduler for Hashing {
            fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
                self.mix(ctx.time);
                for &t in ctx.ready {
                    self.mix(t.index() as u64 + 1);
                }
                for &p in ctx.idle {
                    self.mix(p.index() as u64 + 101);
                }
                for pl in ctx.placement {
                    self.mix(pl.map_or(0, |p| p.index() as u64 + 1));
                }
                for f in ctx.finish {
                    self.mix(f.map_or(0, |t| t + 1));
                }
                // Hash-driven assignment: pair ready tasks and idle
                // processors with a rotating offset.
                let k = (self.h % ctx.idle.len() as u64) as usize;
                for (i, &t) in ctx.ready.iter().take(ctx.idle.len()).enumerate() {
                    out.push((t, ctx.idle[(i + k) % ctx.idle.len()]));
                }
            }
        }
        let params = CommParams::paper();
        let cfg = SimConfig::default();
        let mut scratch = SimScratch::new();
        for seed in [3, 9, 27] {
            let g = sample_graph(seed);
            for topo in [hypercube(3), ring(5), shared_bus(4)] {
                let slow = simulate(&g, &topo, &params, &mut Hashing::default(), &cfg)
                    .unwrap()
                    .makespan;
                let fast = simulate_makespan(
                    &g,
                    &topo,
                    &params,
                    &mut Hashing::default(),
                    &cfg,
                    &mut scratch,
                )
                .unwrap();
                assert_eq!(fast, slow, "seed {seed} on {}", topo.name());
            }
        }
    }
}
