//! The online-scheduler interface and two reference implementations.
//!
//! The simulation engine forms a scheduling *epoch* at time 0 and
//! whenever processors become idle, exactly as the paper's staged
//! annealing does (§4.1). The scheduler sees the ready tasks, the idle
//! processors and the placement history, and returns task→processor
//! assignments (at most one new task per idle processor; unassigned
//! tasks carry over to the next epoch).

use anneal_graph::{TaskGraph, TaskId};
use anneal_topology::{CommParams, ProcId, RouteTable, Topology};

use crate::SimTime;

/// Everything a scheduler may inspect at an epoch.
#[derive(Debug)]
pub struct EpochContext<'a> {
    /// Current simulated time.
    pub time: SimTime,
    /// Ready tasks: every predecessor finished, not yet assigned.
    /// Sorted by task id.
    pub ready: &'a [TaskId],
    /// Idle processors (no assigned task), sorted by id.
    pub idle: &'a [ProcId],
    /// The program being executed.
    pub graph: &'a TaskGraph,
    /// The host architecture.
    pub topology: &'a Topology,
    /// Shortest-path routes and distances.
    pub routes: &'a RouteTable,
    /// Communication overheads (σ, τ, bandwidth).
    pub params: &'a CommParams,
    /// `placement[t]` is the processor a task was assigned to (set for
    /// finished, running and waiting-assigned tasks).
    pub placement: &'a [Option<ProcId>],
    /// `finish[t]` is the completion time of a finished task.
    pub finish: &'a [Option<SimTime>],
    /// `true` when the engine delivers messages (with-comm mode).
    pub comm_enabled: bool,
}

/// An online scheduler driven by the simulation engine.
pub trait OnlineScheduler {
    /// Called at each epoch. Push `(task, processor)` pairs into `out`;
    /// every task must come from `ctx.ready`, every processor from
    /// `ctx.idle`, and both must be pairwise distinct. Tasks left out
    /// simply stay ready for the next epoch.
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>);

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// Assigns ready tasks (in id order) to idle processors (in id order)
/// until one side runs out. The simplest progress-guaranteeing policy;
/// used for engine tests and as a sanity baseline.
#[derive(Debug, Default, Clone)]
pub struct GreedyScheduler;

impl OnlineScheduler for GreedyScheduler {
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        for (&t, &p) in ctx.ready.iter().zip(ctx.idle.iter()) {
            out.push((t, p));
        }
    }

    fn name(&self) -> &str {
        "greedy"
    }
}

/// Replays a precomputed full mapping: a task is dispatched only when its
/// designated processor is idle. Useful for evaluating static schedules
/// (e.g. the branch-and-bound optimum) under the simulator's timing
/// model.
#[derive(Debug, Clone)]
pub struct FixedMapping {
    mapping: Vec<ProcId>,
    /// Priority for tie-breaking when several tasks wait for the same
    /// processor: lower value dispatches first.
    order: Vec<u64>,
}

impl FixedMapping {
    /// Creates a replay scheduler; `mapping[t]` is the processor for task
    /// `t`. Dispatch ties are broken by task id.
    pub fn new(mapping: Vec<ProcId>) -> Self {
        let order = (0..mapping.len() as u64).collect();
        FixedMapping { mapping, order }
    }

    /// Sets an explicit dispatch priority (lower first) per task.
    pub fn with_order(mut self, order: Vec<u64>) -> Self {
        assert_eq!(order.len(), self.mapping.len());
        self.order = order;
        self
    }

    /// The processor a task is pinned to.
    pub fn proc_of(&self, t: TaskId) -> ProcId {
        self.mapping[t.index()]
    }
}

impl OnlineScheduler for FixedMapping {
    fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
        // For each idle processor pick the waiting ready task with the
        // lowest dispatch order.
        for &p in ctx.idle {
            let best = ctx
                .ready
                .iter()
                .filter(|&&t| self.mapping[t.index()] == p)
                .filter(|&&t| !out.iter().any(|&(ot, _)| ot == t))
                .min_by_key(|&&t| (self.order[t.index()], t));
            if let Some(&t) = best {
                out.push((t, p));
            }
        }
    }

    fn name(&self) -> &str {
        "fixed-mapping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId::from_index(i)
    }
    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    fn dummy_ctx_parts() -> (TaskGraph, Topology, RouteTable, CommParams) {
        let mut b = anneal_graph::TaskGraphBuilder::new();
        for _ in 0..4 {
            b.add_task(10);
        }
        let g = b.build().unwrap();
        let topo = anneal_topology::builders::bus(2);
        let routes = RouteTable::build(&topo).unwrap();
        (g, topo, routes, CommParams::zero())
    }

    #[test]
    fn greedy_pairs_in_order() {
        let (g, topo, routes, params) = dummy_ctx_parts();
        let ready = [t(0), t(1), t(2)];
        let idle = [p(0), p(1)];
        let placement = vec![None; 4];
        let finish = vec![None; 4];
        let ctx = EpochContext {
            time: 0,
            ready: &ready,
            idle: &idle,
            graph: &g,
            topology: &topo,
            routes: &routes,
            params: &params,
            placement: &placement,
            finish: &finish,
            comm_enabled: false,
        };
        let mut out = Vec::new();
        GreedyScheduler.on_epoch(&ctx, &mut out);
        assert_eq!(out, vec![(t(0), p(0)), (t(1), p(1))]);
    }

    #[test]
    fn fixed_mapping_waits_for_its_proc() {
        let (g, topo, routes, params) = dummy_ctx_parts();
        // tasks 0..4 all pinned to P1
        let fm = FixedMapping::new(vec![p(1); 4]);
        let ready = [t(2), t(3)];
        let idle_p0_only = [p(0)];
        let placement = vec![None; 4];
        let finish = vec![None; 4];
        let mut ctx = EpochContext {
            time: 0,
            ready: &ready,
            idle: &idle_p0_only,
            graph: &g,
            topology: &topo,
            routes: &routes,
            params: &params,
            placement: &placement,
            finish: &finish,
            comm_enabled: false,
        };
        let mut fm2 = fm.clone();
        let mut out = Vec::new();
        fm2.on_epoch(&ctx, &mut out);
        assert!(out.is_empty(), "P1 not idle -> nothing dispatched");

        let idle_both = [p(0), p(1)];
        ctx.idle = &idle_both;
        out.clear();
        let mut fm3 = fm.clone();
        fm3.on_epoch(&ctx, &mut out);
        assert_eq!(out, vec![(t(2), p(1))], "lowest-id waiting task wins");
    }

    #[test]
    fn fixed_mapping_custom_order() {
        let (g, topo, routes, params) = dummy_ctx_parts();
        let fm = FixedMapping::new(vec![p(0); 4]).with_order(vec![3, 2, 1, 0]);
        let ready = [t(0), t(3)];
        let idle = [p(0)];
        let placement = vec![None; 4];
        let finish = vec![None; 4];
        let ctx = EpochContext {
            time: 0,
            ready: &ready,
            idle: &idle,
            graph: &g,
            topology: &topo,
            routes: &routes,
            params: &params,
            placement: &placement,
            finish: &finish,
            comm_enabled: false,
        };
        let mut out = Vec::new();
        let mut fm = fm;
        fm.on_epoch(&ctx, &mut out);
        assert_eq!(out, vec![(t(3), p(0))]);
        assert_eq!(fm.proc_of(t(3)), p(0));
    }
}
