//! Gantt-chart span recording (the paper's Figure 2 data).

use anneal_graph::TaskId;
use anneal_topology::ProcId;

use crate::SimTime;

/// What a processor was doing during a span.
///
/// Figure 2 of the paper draws compute as full-height blocks, send and
/// receive as half-height blocks above/below the baseline and routing as
/// quarter-height blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing a task (possibly one of several segments if preempted).
    Compute,
    /// Paying the send overhead σ for an outgoing message.
    Send,
    /// Paying the receive overhead τ for an incoming message.
    Receive,
    /// Paying the routing overhead τ for a transit message.
    Route,
}

/// One busy interval on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The processor.
    pub proc: ProcId,
    /// Activity kind.
    pub kind: SpanKind,
    /// Start time (ns).
    pub start: SimTime,
    /// End time (ns), `end >= start`.
    pub end: SimTime,
    /// The task involved: the executing task for `Compute`, the
    /// *destination* task of the message for `Send`/`Receive`/`Route`.
    pub task: Option<TaskId>,
}

impl Span {
    /// Span duration (ns).
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// A complete execution trace: every busy span of every processor.
#[derive(Debug, Clone, Default)]
pub struct Gantt {
    /// All spans, in recording order (monotone non-decreasing start per
    /// processor).
    pub spans: Vec<Span>,
    /// Total simulated time (ns).
    pub makespan: SimTime,
}

impl Gantt {
    /// All spans of one processor, in chronological order.
    pub fn proc_spans(&self, p: ProcId) -> Vec<Span> {
        self.spans.iter().filter(|s| s.proc == p).copied().collect()
    }

    /// Compute segments of one task, in chronological order.
    pub fn task_segments(&self, t: TaskId) -> Vec<Span> {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Compute && s.task == Some(t))
            .copied()
            .collect()
    }

    /// Busy time per kind on processor `p`.
    pub fn busy_by_kind(&self, p: ProcId, kind: SpanKind) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.proc == p && s.kind == kind)
            .map(Span::duration)
            .sum()
    }

    /// Checks that no two spans of the same processor overlap (a
    /// processor does one thing at a time). Returns the first violating
    /// pair if any.
    pub fn find_overlap(&self) -> Option<(Span, Span)> {
        let mut per_proc: std::collections::BTreeMap<u32, Vec<Span>> = Default::default();
        for &s in &self.spans {
            per_proc.entry(s.proc.raw()).or_default().push(s);
        }
        for spans in per_proc.values_mut() {
            spans.sort_by_key(|s| (s.start, s.end));
            for w in spans.windows(2) {
                if w[0].end > w[1].start {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(p: usize, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            proc: ProcId::from_index(p),
            kind,
            start,
            end,
            task: Some(TaskId::from_index(0)),
        }
    }

    #[test]
    fn duration_and_queries() {
        let g = Gantt {
            spans: vec![
                span(0, SpanKind::Compute, 0, 10),
                span(0, SpanKind::Send, 10, 17),
                span(1, SpanKind::Compute, 5, 25),
            ],
            makespan: 25,
        };
        assert_eq!(g.spans[0].duration(), 10);
        assert_eq!(g.proc_spans(ProcId::from_index(0)).len(), 2);
        assert_eq!(g.busy_by_kind(ProcId::from_index(0), SpanKind::Send), 7);
        assert_eq!(g.task_segments(TaskId::from_index(0)).len(), 2);
        assert!(g.find_overlap().is_none());
    }

    #[test]
    fn overlap_detection() {
        let g = Gantt {
            spans: vec![
                span(0, SpanKind::Compute, 0, 10),
                span(0, SpanKind::Receive, 9, 12),
            ],
            makespan: 12,
        };
        let (a, b) = g.find_overlap().unwrap();
        assert_eq!(a.end, 10);
        assert_eq!(b.start, 9);
    }

    #[test]
    fn zero_length_spans_do_not_overlap() {
        let g = Gantt {
            spans: vec![
                span(0, SpanKind::Compute, 0, 10),
                span(0, SpanKind::Send, 10, 10),
                span(0, SpanKind::Receive, 10, 13),
            ],
            makespan: 13,
        };
        assert!(g.find_overlap().is_none());
    }
}
