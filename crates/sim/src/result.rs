//! Simulation results and schedule audits.

use anneal_graph::units::as_us;
use anneal_graph::{TaskGraph, TaskId};
use anneal_topology::ProcId;

use crate::gantt::{Gantt, SpanKind};
use crate::SimTime;

/// Communication statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent (pairs of tasks on distinct processors).
    pub messages: u64,
    /// Total link-occupancy time across all hops (ns).
    pub transfer_ns: u64,
    /// Total σ/τ overhead time burned on processors (ns).
    pub overhead_ns: u64,
    /// Total hops traversed.
    pub hops: u64,
    /// Longest route used (hops).
    pub max_hops: u32,
}

/// Annealing-packet statistics (§6a of the paper: the NE program's 95
/// tasks are assigned in 65 packets, ~15 candidates per 1.46 idle
/// processors).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketStats {
    /// Number of epochs at which at least one ready task and one idle
    /// processor coexisted (i.e. a packet was annealed).
    pub packets: u64,
    /// Sum of ready-task counts over packets.
    pub total_candidates: u64,
    /// Sum of idle-processor counts over packets.
    pub total_idle: u64,
    /// Tasks assigned in total (equals the task count on success).
    pub assigned: u64,
}

impl PacketStats {
    /// Mean candidates per packet.
    pub fn avg_candidates(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_candidates as f64 / self.packets as f64
        }
    }

    /// Mean idle processors per packet.
    pub fn avg_idle(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_idle as f64 / self.packets as f64
        }
    }
}

/// Always-on engine counters of one run (the general engine's mirror
/// of the fast path's [`KernelRunStats`](crate::fastpath::KernelRunStats)).
///
/// Each counter is deterministic *per path*, but the two paths count
/// differently: the fast path keeps compute completions in registers
/// outside the heap and never enqueues stale preempted timers, so
/// `events` and `heap_hwm` from [`simulate`](crate::simulate) exceed
/// the fast path's on preemption-heavy runs. Compare within one path
/// only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunObs {
    /// Events popped from the event queue.
    pub events: u64,
    /// Dispatch epochs run.
    pub epochs: u64,
    /// Most events ever resident in the queue.
    pub heap_hwm: u64,
    /// Cross-processor messages created.
    pub messages: u64,
}

impl RunObs {
    /// Accumulates this run into `r` under the same keys the fast-path
    /// kernel uses (`sim.kernel.events` / `.epochs` / `.messages`
    /// counters, `sim.kernel.heap_hwm` gauge).
    pub fn record_into(&self, r: &mut dyn anneal_obs::Recorder) {
        r.add("sim.kernel.events", self.events);
        r.add("sim.kernel.epochs", self.epochs);
        r.add("sim.kernel.messages", self.messages);
        r.hwm("sim.kernel.heap_hwm", self.heap_hwm);
    }
}

/// The outcome of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the last task (ns).
    pub makespan: SimTime,
    /// `T_1 / makespan` where `T_1` is the sequential execution time.
    pub speedup: f64,
    /// Sequential execution time `T_1 = Σ r_i` (ns).
    pub total_work: u64,
    /// Per-task processor placement.
    pub placement: Vec<ProcId>,
    /// Per-task first-execution start time (ns).
    pub start: Vec<SimTime>,
    /// Per-task completion time (ns).
    pub finish: Vec<SimTime>,
    /// Per-processor busy time (compute + overheads, ns).
    pub busy: Vec<u64>,
    /// Communication statistics.
    pub comm: CommStats,
    /// Scheduling-packet statistics.
    pub packets: PacketStats,
    /// Execution trace (always recorded; cheap at this scale).
    pub gantt: Gantt,
    /// Name of the scheduler that produced the run.
    pub scheduler: String,
    /// Engine counters (events, epochs, queue high-water, messages).
    pub obs: RunObs,
}

impl SimResult {
    /// Mean processor utilization: `Σ busy / (N_p · makespan)`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.busy.is_empty() {
            return 0.0;
        }
        let total: u64 = self.busy.iter().sum();
        total as f64 / (self.busy.len() as u64 * self.makespan) as f64
    }

    /// Makespan in µs.
    pub fn makespan_us(&self) -> f64 {
        as_us(self.makespan)
    }

    /// Verifies the fundamental schedule invariants against the graph:
    ///
    /// 1. every task ran exactly once and finished,
    /// 2. no task started before all its predecessors finished,
    /// 3. compute time per task equals its load (sum of segments),
    /// 4. no processor ever did two things at once,
    /// 5. the makespan is the max finish time.
    pub fn audit(&self, g: &TaskGraph) -> Result<(), String> {
        let n = g.num_tasks();
        if self.placement.len() != n || self.finish.len() != n {
            return Err("result vectors sized differently from graph".into());
        }
        for t in g.tasks() {
            if self.finish[t.index()] < self.start[t.index()] {
                return Err(format!("{t} finished before it started"));
            }
            for e in g.predecessors(t) {
                let p = e.target;
                if self.start[t.index()] < self.finish[p.index()] {
                    return Err(format!(
                        "{t} started at {} before predecessor {p} finished at {}",
                        self.start[t.index()],
                        self.finish[p.index()]
                    ));
                }
            }
            let seg_sum: u64 = self
                .gantt
                .task_segments(t)
                .iter()
                .map(|s| s.duration())
                .sum();
            if seg_sum != g.load(t) {
                return Err(format!(
                    "{t} executed for {seg_sum} ns but load is {} ns",
                    g.load(t)
                ));
            }
            // all segments on the placed processor
            if self
                .gantt
                .task_segments(t)
                .iter()
                .any(|s| s.proc != self.placement[t.index()])
            {
                return Err(format!("{t} has segments on a foreign processor"));
            }
        }
        if let Some((a, b)) = self.gantt.find_overlap() {
            return Err(format!("overlapping spans on {}: {a:?} vs {b:?}", a.proc));
        }
        let max_finish = self.finish.iter().copied().max().unwrap_or(0);
        if max_finish != self.makespan {
            return Err(format!(
                "makespan {} != max finish {max_finish}",
                self.makespan
            ));
        }
        Ok(())
    }

    /// Which tasks ran on processor `p`, ordered by start time.
    pub fn tasks_on(&self, p: ProcId) -> Vec<TaskId> {
        let mut v: Vec<TaskId> = (0..self.placement.len())
            .filter(|&i| self.placement[i] == p)
            .map(TaskId::from_index)
            .collect();
        v.sort_by_key(|t| self.start[t.index()]);
        v
    }

    /// Total compute time recorded in the Gantt (should equal `Σ r_i`).
    pub fn compute_ns(&self) -> u64 {
        self.gantt
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Compute)
            .map(|s| s.duration())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_stat_means() {
        let ps = PacketStats {
            packets: 4,
            total_candidates: 60,
            total_idle: 6,
            assigned: 10,
        };
        assert!((ps.avg_candidates() - 15.0).abs() < 1e-12);
        assert!((ps.avg_idle() - 1.5).abs() < 1e-12);
        let empty = PacketStats::default();
        assert_eq!(empty.avg_candidates(), 0.0);
        assert_eq!(empty.avg_idle(), 0.0);
    }

    // SimResult construction and audits are exercised end-to-end in the
    // engine tests.
}
