//! The discrete-event simulation engine.
//!
//! Executes a task graph on a multicomputer under an [`OnlineScheduler`],
//! reproducing the timing model of the paper:
//!
//! * task execution occupies its processor for `r_i` ns (one task at a
//!   time per processor, plus message overheads that preempt it),
//! * a message from predecessor `p` (on processor `r`) to task `t` (just
//!   assigned to processor `q ≠ r`) is initiated at assignment time —
//!   every predecessor of a *ready* task has already finished, so the
//!   data exists; the engine then plays out
//!   `σ on r → transfer w per hop → τ on every intermediate → τ on q`,
//! * each channel carries one message at a time (FIFO), giving link
//!   contention,
//! * the first scheduling epoch is at time 0 and later epochs fire after
//!   every batch of task completions at the same instant ("successive
//!   epochs occur when one or more processors become idle").

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use anneal_graph::{TaskGraph, TaskId};
use anneal_topology::topology::ChannelId;
use anneal_topology::{CommParams, ProcId, RouteTable, Topology};

use crate::gantt::{Gantt, Span, SpanKind};
use crate::result::{CommStats, PacketStats, RunObs, SimResult};
use crate::scheduler::{EpochContext, OnlineScheduler};
use crate::SimTime;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// When `false`, messages are skipped entirely (Table 2's
    /// "w/o Comm." columns): precedence still holds, data moves free.
    pub comm_enabled: bool,
    /// Hard safety cap on processed events.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            comm_enabled: true,
            max_events: 200_000_000,
        }
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The topology is disconnected.
    Disconnected(String),
    /// The scheduler returned an illegal assignment.
    InvalidAssignment(String),
    /// Execution stalled: unfinished tasks but no events and no
    /// assignments.
    Deadlock {
        /// Time of the stall.
        time: SimTime,
        /// Ready tasks at the stall.
        ready: usize,
        /// Idle processors at the stall.
        idle: usize,
    },
    /// `max_events` exceeded.
    EventLimit,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Disconnected(s) => write!(f, "disconnected topology: {s}"),
            SimError::InvalidAssignment(s) => write!(f, "invalid assignment: {s}"),
            SimError::Deadlock { time, ready, idle } => write!(
                f,
                "deadlock at t={time}: {ready} ready tasks, {idle} idle processors, no events"
            ),
            SimError::EventLimit => write!(f, "event limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // events are naturally all completions
enum Ev {
    TaskDone { p: ProcId, gen: u64 },
    OverheadDone { p: ProcId, gen: u64 },
    TransferDone { msg: u32 },
}

#[derive(Debug)]
struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, EvSlot)>>,
    seq: u64,
    /// Most events ever resident (the `RunObs::heap_hwm` source).
    hwm: usize,
}

/// Wrapper making the event orderable without comparing enum payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EvSlot(u64);

impl PartialOrd for EvSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            hwm: 0,
        }
    }
    fn push(&mut self, time: SimTime, ev: Ev, store: &mut Vec<Ev>) {
        let slot = store.len() as u64;
        store.push(ev);
        self.heap.push(Reverse((time, self.seq, EvSlot(slot))));
        self.seq += 1;
        self.hwm = self.hwm.max(self.heap.len());
    }
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
    fn pop(&mut self, store: &[Ev]) -> Option<(SimTime, Ev)> {
        self.heap
            .pop()
            .map(|Reverse((t, _, EvSlot(s)))| (t, store[s as usize]))
    }
}

#[derive(Debug, Clone, Copy)]
struct Overhead {
    kind: SpanKind,
    dur: u64,
    msg: u32,
}

#[derive(Debug)]
struct ComputeState {
    task: TaskId,
    remaining: u64,
    running_since: Option<SimTime>,
}

#[derive(Debug)]
struct Proc {
    assigned: Option<TaskId>,
    compute: Option<ComputeState>,
    current_overhead: Option<Overhead>,
    /// Message-driven overheads (receive/route τ): incoming messages
    /// preempt the processor, so they run before pending sends.
    incoming_q: VecDeque<Overhead>,
    /// Locally initiated send overheads (σ).
    send_q: VecDeque<Overhead>,
    gen: u64,
    busy: u64,
}

impl Proc {
    fn new() -> Self {
        Proc {
            assigned: None,
            compute: None,
            current_overhead: None,
            incoming_q: VecDeque::new(),
            send_q: VecDeque::new(),
            gen: 0,
            busy: 0,
        }
    }
    fn is_idle(&self) -> bool {
        self.assigned.is_none()
    }
}

#[derive(Debug)]
struct Message {
    dest_task: TaskId,
    dest: ProcId,
    weight: u64,
    route: Vec<ProcId>,
    hop: usize, // message currently at route[hop]
}

#[derive(Debug, Default)]
struct Channel {
    busy: bool,
    queue: VecDeque<u32>,
}

struct Engine<'a> {
    g: &'a TaskGraph,
    topo: &'a Topology,
    routes: RouteTable,
    params: &'a CommParams,
    cfg: &'a SimConfig,

    now: SimTime,
    queue: EventQueue,
    store: Vec<Ev>,
    procs: Vec<Proc>,
    channels: Vec<Channel>,
    msgs: Vec<Message>,

    // task state
    placement: Vec<Option<ProcId>>,
    start: Vec<Option<SimTime>>,
    finish: Vec<Option<SimTime>>,
    unfinished_preds: Vec<u32>,
    pending_inputs: Vec<u32>,
    ready: Vec<TaskId>, // sorted set of ready, unassigned tasks
    finished: usize,

    gantt: Gantt,
    comm: CommStats,
    packets: PacketStats,
    epochs: u64,
    epoch_pending: bool,
}

impl<'a> Engine<'a> {
    fn new(
        g: &'a TaskGraph,
        topo: &'a Topology,
        params: &'a CommParams,
        cfg: &'a SimConfig,
    ) -> Result<Self, SimError> {
        let routes = RouteTable::build(topo).map_err(|e| SimError::Disconnected(e.to_string()))?;
        let n = g.num_tasks();
        let unfinished_preds: Vec<u32> = g.tasks().map(|t| g.in_degree(t) as u32).collect();
        let ready: Vec<TaskId> = g
            .tasks()
            .filter(|&t| unfinished_preds[t.index()] == 0)
            .collect();
        Ok(Engine {
            g,
            topo,
            routes,
            params,
            cfg,
            now: 0,
            queue: EventQueue::new(),
            store: Vec::new(),
            procs: (0..topo.num_procs()).map(|_| Proc::new()).collect(),
            channels: (0..topo.num_channels())
                .map(|_| Channel::default())
                .collect(),
            msgs: Vec::new(),
            placement: vec![None; n],
            start: vec![None; n],
            finish: vec![None; n],
            unfinished_preds,
            pending_inputs: vec![0; n],
            ready,
            finished: 0,
            gantt: Gantt::default(),
            comm: CommStats::default(),
            packets: PacketStats::default(),
            epochs: 0,
            epoch_pending: true,
        })
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at, ev, &mut self.store);
    }

    /// Keeps the processor busy with the right thing. Never called while
    /// an overhead timer is outstanding for `p` (guarded by
    /// `current_overhead`).
    fn pump(&mut self, p: ProcId) {
        let now = self.now;
        let proc = &mut self.procs[p.index()];
        if proc.current_overhead.is_some() {
            return;
        }
        let next_overhead = proc
            .incoming_q
            .pop_front()
            .or_else(|| proc.send_q.pop_front());
        if let Some(oh) = next_overhead {
            // Preempt a running compute task.
            if let Some(cs) = proc.compute.as_mut() {
                if let Some(since) = cs.running_since.take() {
                    let done = now - since;
                    cs.remaining -= done;
                    proc.busy += done;
                    proc.gen += 1; // invalidate the pending TaskDone
                    let task = cs.task;
                    self.gantt.spans.push(Span {
                        proc: p,
                        kind: SpanKind::Compute,
                        start: since,
                        end: now,
                        task: Some(task),
                    });
                }
            }
            let proc = &mut self.procs[p.index()];
            proc.current_overhead = Some(oh);
            proc.gen += 1;
            let gen = proc.gen;
            self.schedule(now + oh.dur, Ev::OverheadDone { p, gen });
            return;
        }
        if let Some(cs) = proc.compute.as_mut() {
            if cs.running_since.is_none() {
                cs.running_since = Some(now);
                if self.start[cs.task.index()].is_none() {
                    self.start[cs.task.index()] = Some(now);
                }
                proc.gen += 1;
                let gen = proc.gen;
                let at = now + cs.remaining;
                self.schedule(at, Ev::TaskDone { p, gen });
            }
        }
    }

    fn enqueue_overhead(&mut self, p: ProcId, oh: Overhead) {
        let proc = &mut self.procs[p.index()];
        match oh.kind {
            SpanKind::Send => proc.send_q.push_back(oh),
            _ => proc.incoming_q.push_back(oh),
        }
        self.pump(p);
    }

    // lint:allow(panic) reason="routes come from the routing table, so consecutive hops share a channel"
    fn channel_push(&mut self, msg_id: u32) {
        let m = &self.msgs[msg_id as usize];
        let (u, v) = (m.route[m.hop], m.route[m.hop + 1]);
        let ch = self
            .topo
            .channel_of(u, v)
            .expect("route hops are adjacent")
            .0 as usize;
        let weight = m.weight;
        let channel = &mut self.channels[ch];
        if channel.busy {
            channel.queue.push_back(msg_id);
        } else {
            channel.busy = true;
            self.comm.transfer_ns += weight;
            self.comm.hops += 1;
            self.schedule(self.now + weight, Ev::TransferDone { msg: msg_id });
        }
    }

    // lint:allow(panic) reason="routes come from the routing table, so consecutive hops share a channel"
    fn current_channel(&self, msg_id: u32) -> ChannelId {
        let m = &self.msgs[msg_id as usize];
        let (u, v) = (m.route[m.hop], m.route[m.hop + 1]);
        self.topo.channel_of(u, v).expect("route hops are adjacent")
    }

    fn on_transfer_done(&mut self, msg_id: u32) {
        // Free the channel and start the next queued transfer.
        let ch = self.current_channel(msg_id).0 as usize;
        self.channels[ch].busy = false;
        if let Some(next) = self.channels[ch].queue.pop_front() {
            self.channels[ch].busy = true;
            let w = self.msgs[next as usize].weight;
            self.comm.transfer_ns += w;
            self.comm.hops += 1;
            self.schedule(self.now + w, Ev::TransferDone { msg: next });
        }
        // Advance the message.
        let m = &mut self.msgs[msg_id as usize];
        m.hop += 1;
        let v = m.route[m.hop];
        let tau = self.params.tau;
        if v == m.dest {
            self.enqueue_overhead(
                v,
                Overhead {
                    kind: SpanKind::Receive,
                    dur: tau,
                    msg: msg_id,
                },
            );
        } else {
            self.enqueue_overhead(
                v,
                Overhead {
                    kind: SpanKind::Route,
                    dur: tau,
                    msg: msg_id,
                },
            );
        }
    }

    // lint:allow(panic) reason="the generation check above rejects stale timers, so the overhead is present and never Compute"
    fn on_overhead_done(&mut self, p: ProcId, gen: u64) {
        if self.procs[p.index()].gen != gen {
            return; // stale
        }
        let oh = self.procs[p.index()]
            .current_overhead
            .take()
            .expect("overhead timer fired without current overhead");
        self.procs[p.index()].busy += oh.dur;
        self.comm.overhead_ns += oh.dur;
        self.gantt.spans.push(Span {
            proc: p,
            kind: oh.kind,
            start: self.now - oh.dur,
            end: self.now,
            task: Some(self.msgs[oh.msg as usize].dest_task),
        });
        match oh.kind {
            SpanKind::Send => self.channel_push(oh.msg),
            SpanKind::Route => self.channel_push(oh.msg),
            SpanKind::Receive => self.deliver(oh.msg),
            SpanKind::Compute => unreachable!("compute is not an overhead"),
        }
        self.pump(p);
    }

    // lint:allow(panic) reason="messages are only created for assigned destination tasks"
    fn deliver(&mut self, msg_id: u32) {
        let t = self.msgs[msg_id as usize].dest_task;
        let pending = &mut self.pending_inputs[t.index()];
        debug_assert!(*pending > 0);
        *pending -= 1;
        if *pending == 0 {
            let q = self.placement[t.index()].expect("assigned task has a processor");
            debug_assert!(self.procs[q.index()].compute.is_none());
            self.procs[q.index()].compute = Some(ComputeState {
                task: t,
                remaining: self.g.load(t),
                running_since: None,
            });
            self.pump(q);
        }
    }

    // lint:allow(panic) reason="the generation check above rejects stale timers, so the compute state is live"
    fn on_task_done(&mut self, p: ProcId, gen: u64) {
        if self.procs[p.index()].gen != gen {
            return; // stale
        }
        let proc = &mut self.procs[p.index()];
        let cs = proc
            .compute
            .take()
            .expect("task timer fired without compute state");
        let since = cs.running_since.expect("completed task was running");
        proc.busy += self.now - since;
        proc.assigned = None;
        let task = cs.task;
        self.gantt.spans.push(Span {
            proc: p,
            kind: SpanKind::Compute,
            start: since,
            end: self.now,
            task: Some(task),
        });
        self.finish[task.index()] = Some(self.now);
        self.finished += 1;
        for e in self.g.successors(task) {
            let c = &mut self.unfinished_preds[e.target.index()];
            *c -= 1;
            if *c == 0 {
                // keep `ready` sorted by id
                let pos = self.ready.partition_point(|&x| x < e.target);
                self.ready.insert(pos, e.target);
            }
        }
        self.epoch_pending = true;
        self.pump(p);
    }

    // lint:allow(panic) reason="schedulers only assign ready tasks, whose predecessors have all finished"
    fn assign(&mut self, t: TaskId, q: ProcId) {
        self.placement[t.index()] = Some(q);
        self.procs[q.index()].assigned = Some(t);
        let pos = self.ready.binary_search(&t).expect("task was ready");
        self.ready.remove(pos);

        let mut pending = 0u32;
        if self.cfg.comm_enabled {
            let sigma = self.params.sigma;
            let preds: Vec<(TaskId, u64)> = self
                .g
                .predecessors(t)
                .iter()
                .map(|e| (e.target, e.weight))
                .collect();
            for (pred, w) in preds {
                let src = self.placement[pred.index()].expect("predecessor finished");
                if src == q {
                    continue;
                }
                let route = self.routes.route(src, q);
                self.comm.max_hops = self.comm.max_hops.max((route.len() - 1) as u32);
                self.comm.messages += 1;
                let msg_id = self.msgs.len() as u32;
                self.msgs.push(Message {
                    dest_task: t,
                    dest: q,
                    weight: link_occupancy_time(self.params, w),
                    route,
                    hop: 0,
                });
                pending += 1;
                self.enqueue_overhead(
                    src,
                    Overhead {
                        kind: SpanKind::Send,
                        dur: sigma,
                        msg: msg_id,
                    },
                );
            }
        }
        self.pending_inputs[t.index()] = pending;
        if pending == 0 {
            debug_assert!(self.procs[q.index()].compute.is_none());
            self.procs[q.index()].compute = Some(ComputeState {
                task: t,
                remaining: self.g.load(t),
                running_since: None,
            });
            self.pump(q);
        }
    }

    fn run_epoch(&mut self, sched: &mut dyn OnlineScheduler) -> Result<(), SimError> {
        if self.ready.is_empty() {
            return Ok(());
        }
        let idle: Vec<ProcId> = self
            .topo
            .procs()
            .filter(|&p| self.procs[p.index()].is_idle())
            .collect();
        if idle.is_empty() {
            return Ok(());
        }
        self.packets.packets += 1;
        self.packets.total_candidates += self.ready.len() as u64;
        self.packets.total_idle += idle.len() as u64;

        let mut out = Vec::new();
        {
            let ctx = EpochContext {
                time: self.now,
                ready: &self.ready,
                idle: &idle,
                graph: self.g,
                topology: self.topo,
                routes: &self.routes,
                params: self.params,
                placement: &self.placement,
                finish: &self.finish,
                comm_enabled: self.cfg.comm_enabled,
            };
            sched.on_epoch(&ctx, &mut out);
        }

        // Validate.
        let mut used_tasks = std::collections::BTreeSet::new();
        let mut used_procs = std::collections::BTreeSet::new();
        for &(t, p) in &out {
            if self.ready.binary_search(&t).is_err() {
                return Err(SimError::InvalidAssignment(format!("{t} is not ready")));
            }
            if !idle.contains(&p) {
                return Err(SimError::InvalidAssignment(format!("{p} is not idle")));
            }
            if !used_tasks.insert(t) {
                return Err(SimError::InvalidAssignment(format!("{t} assigned twice")));
            }
            if !used_procs.insert(p) {
                return Err(SimError::InvalidAssignment(format!(
                    "{p} received two tasks"
                )));
            }
        }
        self.packets.assigned += out.len() as u64;
        for (t, p) in out {
            self.assign(t, p);
        }
        Ok(())
    }

    // lint:allow(panic) reason="the deadlock check above guarantees every task was placed, started and finished"
    fn run(mut self, sched: &mut dyn OnlineScheduler) -> Result<SimResult, SimError> {
        let mut events: u64 = 0;
        loop {
            let next = self.queue.peek_time();
            if self.epoch_pending && next.is_none_or(|t| t > self.now) {
                self.epoch_pending = false;
                self.epochs += 1;
                self.run_epoch(sched)?;
                continue;
            }
            let Some((t, ev)) = self.queue.pop(&self.store) else {
                break;
            };
            events += 1;
            if events > self.cfg.max_events {
                return Err(SimError::EventLimit);
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            match ev {
                Ev::TaskDone { p, gen } => self.on_task_done(p, gen),
                Ev::OverheadDone { p, gen } => self.on_overhead_done(p, gen),
                Ev::TransferDone { msg } => self.on_transfer_done(msg),
            }
        }
        if self.finished < self.g.num_tasks() {
            let idle = self.procs.iter().filter(|pr| pr.is_idle()).count();
            return Err(SimError::Deadlock {
                time: self.now,
                ready: self.ready.len(),
                idle,
            });
        }
        let makespan = self.finish.iter().map(|f| f.unwrap()).max().unwrap_or(0);
        self.gantt.makespan = makespan;
        let total_work = self.g.total_work();
        Ok(SimResult {
            makespan,
            speedup: if makespan == 0 {
                0.0
            } else {
                total_work as f64 / makespan as f64
            },
            total_work,
            placement: self.placement.iter().map(|p| p.unwrap()).collect(),
            start: self.start.iter().map(|s| s.unwrap()).collect(),
            finish: self.finish.iter().map(|f| f.unwrap()).collect(),
            busy: self.procs.iter().map(|p| p.busy).collect(),
            obs: RunObs {
                events,
                epochs: self.epochs,
                heap_hwm: self.queue.hwm as u64,
                messages: self.comm.messages,
            },
            comm: self.comm,
            packets: self.packets,
            gantt: self.gantt,
            scheduler: sched.name().to_string(),
        })
    }
}

/// Helper: interprets a graph edge weight as link-occupancy time.
///
/// Edge weights in this project are *already* stored as nanoseconds of
/// link time (`w = L/BW` precomputed by the workload generators), so
/// under finite bandwidth they pass through unchanged; free-bandwidth
/// parameter sets zero them out. Shared by the engine and the
/// fixed-mapping evaluator (`crate::eval`) so both charge identical
/// transfer times.
pub(crate) fn link_occupancy_time(params: &CommParams, w: u64) -> u64 {
    if params.bandwidth_bps == u64::MAX {
        0
    } else {
        w
    }
}

/// Simulates `graph` on `topology` with the given communication
/// parameters, driven by `scheduler`.
pub fn simulate(
    graph: &TaskGraph,
    topology: &Topology,
    params: &CommParams,
    scheduler: &mut dyn OnlineScheduler,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    Engine::new(graph, topology, params, config)?.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FixedMapping, GreedyScheduler};
    use anneal_graph::units::us;
    use anneal_graph::TaskGraphBuilder;
    use anneal_topology::builders::{bus, hypercube, linear, shared_bus};

    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    /// a(10us) -> b(20us), one 4us message.
    fn two_chain() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(us(10.0));
        let c = b.add_task(us(20.0));
        b.add_edge(a, c, us(4.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_task_single_proc() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(us(5.0));
        let g = b.build().unwrap();
        let topo = linear(1);
        let mut s = GreedyScheduler;
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.makespan, us(5.0));
        assert_eq!(r.speedup, 1.0);
        r.audit(&g).unwrap();
    }

    #[test]
    fn chain_same_proc_no_comm_cost() {
        let g = two_chain();
        let topo = bus(2);
        let mut s = FixedMapping::new(vec![p(0), p(0)]);
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.makespan, us(30.0));
        assert_eq!(r.comm.messages, 0);
        r.audit(&g).unwrap();
    }

    #[test]
    fn chain_across_neighbors_pays_full_path() {
        // a on P0, b on P1 at distance 1:
        // a: 0..10; sigma on P0: 10..17; transfer: 17..21;
        // receive tau on P1: 21..30; b: 30..50.
        let g = two_chain();
        let topo = linear(2);
        let mut s = FixedMapping::new(vec![p(0), p(1)]);
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.makespan, us(50.0));
        assert_eq!(r.start[1], us(30.0));
        assert_eq!(r.comm.messages, 1);
        assert_eq!(r.comm.transfer_ns, us(4.0));
        assert_eq!(r.comm.overhead_ns, us(16.0)); // sigma + tau
        r.audit(&g).unwrap();
    }

    #[test]
    fn chain_across_distance_two_adds_route_overhead() {
        // P0 -> P2 on a linear array: sigma 10..17, hop1 17..21,
        // route tau on P1 21..30, hop2 30..34, receive tau 34..43,
        // b 43..63.
        let g = two_chain();
        let topo = linear(3);
        let mut s = FixedMapping::new(vec![p(0), p(2)]);
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.makespan, us(63.0));
        assert_eq!(r.comm.hops, 2);
        assert_eq!(r.comm.max_hops, 2);
        assert_eq!(r.comm.overhead_ns, us(25.0)); // sigma + 2 tau
        r.audit(&g).unwrap();
    }

    #[test]
    fn without_comm_mode_is_free() {
        let g = two_chain();
        let topo = linear(3);
        let mut s = FixedMapping::new(vec![p(0), p(2)]);
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let r = simulate(&g, &topo, &CommParams::zero(), &mut s, &cfg).unwrap();
        assert_eq!(r.makespan, us(30.0));
        assert_eq!(r.comm.messages, 0);
        r.audit(&g).unwrap();
    }

    #[test]
    fn routing_preempts_intermediate_compute() {
        // Long task c on P1 gets preempted by a route overhead.
        // a: P0 0..10; c: P1 0..(100, preempted); b: P2.
        // msg a->b: sigma P0 10..17, hop 17..21, route on P1 21..30,
        // hop 30..34, receive P2 34..43, b 43..63.
        // c: runs 0..21, 21..30 preempted, resumes 30..109.
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(us(10.0));
        let c = bld.add_task(us(100.0));
        let b2 = bld.add_task(us(20.0));
        bld.add_edge(a, b2, us(4.0)).unwrap();
        let g = bld.build().unwrap();
        let topo = linear(3);
        let mut s = FixedMapping::new(vec![p(0), p(1), p(2)]);
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.finish[c.index()], us(109.0));
        assert_eq!(r.finish[b2.index()], us(63.0));
        assert_eq!(r.makespan, us(109.0));
        // c has exactly two compute segments
        let segs = r.gantt.task_segments(c);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].start, segs[0].end), (0, us(21.0)));
        assert_eq!((segs[1].start, segs[1].end), (us(30.0), us(109.0)));
        r.audit(&g).unwrap();
    }

    #[test]
    fn channel_contention_serializes_transfers() {
        // Two messages cross the single P0-P1 link in both directions.
        // a on P0 -> c on P1; b on P1 -> d on P0. Both finish at 10.
        // FixedMapping walks idle processors in id order, so d (pinned to
        // P0) is assigned first and its message wins the channel:
        // sigmas 10..17 on both procs; link: b->d 17..21, a->c 21..25.
        // receive on P0 21..30 -> d 30..50 (20us)
        // receive on P1 25..34 -> c 34..54 (20us)
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(us(10.0));
        let b = bld.add_task(us(10.0));
        let c = bld.add_task(us(20.0));
        let d = bld.add_task(us(20.0));
        bld.add_edge(a, c, us(4.0)).unwrap();
        bld.add_edge(b, d, us(4.0)).unwrap();
        let g = bld.build().unwrap();
        let topo = linear(2);
        let mut s = FixedMapping::new(vec![p(0), p(1), p(1), p(0)]);
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.finish[c.index()], us(54.0));
        assert_eq!(r.finish[d.index()], us(50.0));
        r.audit(&g).unwrap();
    }

    #[test]
    fn shared_bus_contends_globally() {
        // Same two messages but on a 3-proc shared bus between disjoint
        // pairs: transfers still serialize.
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(us(10.0));
        let b = bld.add_task(us(10.0));
        let c = bld.add_task(us(20.0));
        let d = bld.add_task(us(20.0));
        bld.add_edge(a, c, us(4.0)).unwrap();
        bld.add_edge(b, d, us(4.0)).unwrap();
        let g = bld.build().unwrap();

        // Dedicated channels: both transfers overlap.
        let mut s1 = FixedMapping::new(vec![p(0), p(1), p(2), p(3)]);
        let rb = simulate(
            &g,
            &bus(4),
            &CommParams::paper(),
            &mut s1,
            &SimConfig::default(),
        )
        .unwrap();
        // Shared bus: second transfer waits.
        let mut s2 = FixedMapping::new(vec![p(0), p(1), p(2), p(3)]);
        let rs = simulate(
            &g,
            &shared_bus(4),
            &CommParams::paper(),
            &mut s2,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(rs.makespan > rb.makespan);
        assert_eq!(rb.makespan, us(10.0 + 7.0 + 4.0 + 9.0 + 20.0));
        assert_eq!(rs.makespan, us(10.0 + 7.0 + 4.0 + 4.0 + 9.0 + 20.0));
        rb.audit(&g).unwrap();
        rs.audit(&g).unwrap();
    }

    #[test]
    fn greedy_diamond_on_hypercube_audits() {
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(us(10.0));
        let x = bld.add_task(us(20.0));
        let y = bld.add_task(us(30.0));
        let d = bld.add_task(us(40.0));
        bld.add_edge(a, x, us(4.0)).unwrap();
        bld.add_edge(a, y, us(4.0)).unwrap();
        bld.add_edge(x, d, us(4.0)).unwrap();
        bld.add_edge(y, d, us(4.0)).unwrap();
        let g = bld.build().unwrap();
        let topo = hypercube(3);
        let mut s = GreedyScheduler;
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        r.audit(&g).unwrap();
        assert!(r.makespan >= us(100.0) - us(10.0)); // cp bound-ish sanity
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }

    #[test]
    fn makespan_never_beats_critical_path_or_work_bound() {
        let g = anneal_workload_sample();
        let topo = hypercube(3);
        let mut s = GreedyScheduler;
        let cfg = SimConfig {
            comm_enabled: false,
            ..SimConfig::default()
        };
        let r = simulate(&g, &topo, &CommParams::zero(), &mut s, &cfg).unwrap();
        let cp = anneal_graph::critical_path::critical_path_length(&g);
        assert!(r.makespan >= cp);
        assert!(r.makespan >= g.total_work() / 8);
        r.audit(&g).unwrap();
    }

    fn anneal_workload_sample() -> TaskGraph {
        use anneal_graph::generate::{layered_random, LayeredConfig, Range};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        layered_random(
            &LayeredConfig {
                layers: 6,
                width: 8,
                edge_prob: 0.3,
                load: Range::new(us(1.0), us(50.0)),
                comm: Range::new(us(1.0), us(8.0)),
            },
            &mut rng,
        )
    }

    #[test]
    fn deadlocking_scheduler_reports_error() {
        struct Lazy;
        impl OnlineScheduler for Lazy {
            fn on_epoch(&mut self, _: &EpochContext<'_>, _: &mut Vec<(TaskId, ProcId)>) {}
        }
        let g = two_chain();
        let topo = bus(2);
        let mut s = Lazy;
        let err = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap_err();
        match err {
            SimError::Deadlock { ready, idle, .. } => {
                assert_eq!(ready, 1);
                assert_eq!(idle, 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn invalid_assignments_rejected() {
        struct Bad(u8);
        impl OnlineScheduler for Bad {
            fn on_epoch(&mut self, ctx: &EpochContext<'_>, out: &mut Vec<(TaskId, ProcId)>) {
                match self.0 {
                    0 => out.push((TaskId::from_index(99), ctx.idle[0])), // unknown task
                    1 => {
                        // same proc twice
                        out.push((ctx.ready[0], ctx.idle[0]));
                        out.push((ctx.ready[1], ctx.idle[0]));
                    }
                    _ => {
                        // same task twice
                        out.push((ctx.ready[0], ctx.idle[0]));
                        out.push((ctx.ready[0], ctx.idle[1]));
                    }
                }
            }
        }
        let mut bld = TaskGraphBuilder::new();
        bld.add_task(us(1.0));
        bld.add_task(us(1.0));
        let g = bld.build().unwrap();
        for mode in 0..3u8 {
            let mut s = Bad(mode);
            let err = simulate(
                &g,
                &bus(2),
                &CommParams::paper(),
                &mut s,
                &SimConfig::default(),
            )
            .unwrap_err();
            assert!(matches!(err, SimError::InvalidAssignment(_)), "{err}");
        }
    }

    #[test]
    fn packet_stats_counted() {
        // Two independent tasks, one proc: two epochs with one candidate
        // each... actually epoch 1 sees both candidates.
        let mut bld = TaskGraphBuilder::new();
        bld.add_task(us(5.0));
        bld.add_task(us(5.0));
        let g = bld.build().unwrap();
        let topo = linear(1);
        let mut s = GreedyScheduler;
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.packets.packets, 2);
        assert_eq!(r.packets.total_candidates, 3); // 2 then 1
        assert_eq!(r.packets.assigned, 2);
        assert_eq!(r.makespan, us(10.0));
    }

    #[test]
    fn event_limit_guards() {
        let g = two_chain();
        let cfg = SimConfig {
            comm_enabled: true,
            max_events: 1,
        };
        let mut s = FixedMapping::new(vec![p(0), p(1)]);
        let err = simulate(&g, &linear(2), &CommParams::paper(), &mut s, &cfg).unwrap_err();
        assert_eq!(err, SimError::EventLimit);
    }

    #[test]
    fn compute_time_conservation() {
        let g = anneal_workload_sample();
        let topo = hypercube(3);
        let mut s = GreedyScheduler;
        let r = simulate(
            &g,
            &topo,
            &CommParams::paper(),
            &mut s,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.compute_ns(), g.total_work());
        r.audit(&g).unwrap();
    }

    #[test]
    fn utilization_bounded() {
        let g = anneal_workload_sample();
        let r = simulate(
            &g,
            &hypercube(3),
            &CommParams::paper(),
            &mut GreedyScheduler,
            &SimConfig::default(),
        )
        .unwrap();
        let u = r.utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    #[test]
    fn deterministic_replay() {
        let g = anneal_workload_sample();
        let r1 = simulate(
            &g,
            &hypercube(3),
            &CommParams::paper(),
            &mut GreedyScheduler,
            &SimConfig::default(),
        )
        .unwrap();
        let r2 = simulate(
            &g,
            &hypercube(3),
            &CommParams::paper(),
            &mut GreedyScheduler,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.finish, r2.finish);
        assert_eq!(r1.placement, r2.placement);
    }
}
