//! Property tests for the registry merge algebra.
//!
//! The campaign driver's re-shard invariance ("non-timing metrics are
//! identical across `--procs`, `--threads`, and shard count") reduces
//! to three algebraic laws of [`MetricsRegistry::merge`]: it must be
//! associative, commutative, and must make any sharded replay of an
//! observation stream collapse to the unsharded replay. These tests
//! pin the laws on randomized streams, including the JSONL round trip
//! the multi-process driver actually takes.

use anneal_obs::{JsonlSink, MetricsRegistry, Recorder};
use proptest::prelude::*;

/// One observation: `kind` selects the instrument (and with it the
/// key, so no key ever mixes instruments), `v` is the value.
type Op = (u8, u64);

const COUNTER_KEYS: [&str; 2] = ["arena.cells", "sim.kernel.events"];
const GAUGE_KEYS: [&str; 2] = ["sim.kernel.heap_hwm", "sa.trace.max_samples"];
const HIST_KEYS: [&str; 2] = ["arena.makespan_ns", "time.cell_ns"];

fn apply(reg: &mut MetricsRegistry, ops: &[Op]) {
    for &(kind, v) in ops {
        let slot = (kind >> 2) as usize % 2;
        match kind % 3 {
            0 => reg.add(COUNTER_KEYS[slot], v % 1000),
            1 => reg.hwm(GAUGE_KEYS[slot], v),
            _ => reg.observe(HIST_KEYS[slot], v),
        }
    }
}

fn replay(ops: &[Op]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    apply(&mut reg, ops);
    reg
}

/// Canonical form for equality: `to_json` renders keys in sorted order
/// with every bucket, so byte equality is registry equality.
fn canon(reg: &MetricsRegistry) -> String {
    reg.to_json()
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((any::<u8>(), any::<u64>()), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(A, B) == merge(B, A).
    #[test]
    fn merge_is_commutative(a in arb_ops(), b in arb_ops()) {
        let (ra, rb) = (replay(&a), replay(&b));
        let mut ab = replay(&a);
        ab.merge(&rb);
        let mut ba = replay(&b);
        ba.merge(&ra);
        prop_assert_eq!(canon(&ab), canon(&ba));
    }

    /// (A + B) + C == A + (B + C).
    #[test]
    fn merge_is_associative(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        let (rb, rc) = (replay(&b), replay(&c));
        let mut left = replay(&a);
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = replay(&b);
        bc.merge(&rc);
        let mut right = replay(&a);
        right.merge(&bc);
        prop_assert_eq!(canon(&left), canon(&right));
    }

    /// Splitting one observation stream into shards at *any* boundary
    /// and merging the per-shard registries reproduces the unsharded
    /// replay — the law the campaign's `--procs`/shard-count
    /// invariance rests on.
    #[test]
    fn merge_is_reshard_invariant(ops in arb_ops(), cut_a in 0u64..48, cut_b in 0u64..48) {
        let whole = replay(&ops);
        for cuts in [[cut_a, cut_b], [cut_b, cut_a]] {
            let mut i = cuts[0] as usize % (ops.len() + 1);
            let mut j = cuts[1] as usize % (ops.len() + 1);
            if i > j {
                std::mem::swap(&mut i, &mut j);
            }
            let mut merged = replay(&ops[..i]);
            merged.merge(&replay(&ops[i..j]));
            merged.merge(&replay(&ops[j..]));
            prop_assert_eq!(canon(&merged), canon(&whole));
        }
    }

    /// The multi-process path — each shard serialized to JSONL, the
    /// parent merging the files — is equivalent to in-process merge.
    #[test]
    fn jsonl_round_trip_matches_in_process_merge(ops in arb_ops(), cut in 0u64..48) {
        let i = cut as usize % (ops.len() + 1);
        let whole = replay(&ops);
        let mut merged = MetricsRegistry::new();
        for shard in [&ops[..i], &ops[i..]] {
            let mut sink = JsonlSink::new();
            replay(shard).write_jsonl(&mut sink);
            let consumed = merged.merge_jsonl(sink.as_str()).expect("well-formed jsonl");
            prop_assert_eq!(consumed, replay(shard).len());
        }
        prop_assert_eq!(canon(&merged), canon(&whole));
    }
}
