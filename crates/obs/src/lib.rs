//! # anneal-obs
//!
//! The deterministic metrics & tracing layer for the annealsched
//! workspace. Everything in this repository is contractually
//! byte-reproducible — tournament CSVs, campaign merges, corpus
//! baselines — which rules out the usual observability approach of
//! sprinkling wall-clock reads and global mutable registries through
//! the hot path. This crate provides the sanctioned alternative:
//!
//! * [`Recorder`] — the narrow sink interface instrumented code writes
//!   to. [`NoopRecorder`] is the zero-cost default (every call is a
//!   no-op the optimizer deletes; no allocation, no branch on data);
//!   [`MetricsRegistry`] is the concrete collector.
//! * [`MetricsRegistry`] — deterministic counters, gauges (high-water
//!   marks) and fixed-bucket log₂-scale histograms. Its
//!   [`merge`](MetricsRegistry::merge) is associative and commutative,
//!   so merging per-worker or per-shard registries yields the same
//!   bytes regardless of worker count, merge order, or how the work was
//!   sharded.
//! * [`Clock`] / [`Span`] — the only sanctioned way to read time.
//!   [`WallClock`] lives *here* (and is constructed only by binaries);
//!   [`NullClock`] replaces it in deterministic CI mode, pinning every
//!   duration to zero. `anneal-lint` enforces that no other crate
//!   touches `std::time` directly.
//! * [`JsonlSink`] — an append-only JSON-lines buffer with caller-fixed
//!   field order, so emitted artifacts diff cleanly and CI can compare
//!   them byte for byte.
//!
//! ## Metric classes
//!
//! Key names carry their determinism class (see
//! [`class_of`] and `docs/OBSERVABILITY.md`):
//!
//! | prefix   | class                        | invariant |
//! |----------|------------------------------|-----------|
//! | `time.`  | wall-clock timing            | none — varies run to run |
//! | `sched.` | execution-schedule dependent | deterministic totals only at fixed thread/process counts |
//! | other    | deterministic                | byte-identical across `--procs`/`--threads`/re-sharding |
//!
//! [`MetricsRegistry::deterministic_only`] filters a registry down to
//! the last class, which is what CI compares across process counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod json;
pub mod jsonl;
pub mod recorder;
pub mod registry;

pub use clock::{Clock, NullClock, Span, WallClock};
pub use jsonl::{EventWriter, JsonlSink};
pub use recorder::{NoopRecorder, Recorder};
pub use registry::{class_of, Histogram, MetricClass, MetricValue, MetricsRegistry, ObsError};
