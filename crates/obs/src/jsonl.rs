//! [`JsonlSink`]: an append-only JSON-lines buffer with stable field
//! order.
//!
//! Every event is one line, every line is an object whose first field
//! is `"type"`, and fields render exactly in the order the caller adds
//! them — no maps, no reordering — so two runs that record the same
//! events produce byte-identical files.

use crate::json::write_str;

/// An in-memory JSON-lines buffer. Callers [`event`](JsonlSink::event)
/// into it and finally write [`as_str`](JsonlSink::as_str) to disk in
/// one shot (instrumentation never does file I/O mid-run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JsonlSink {
    buf: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Starts one event line of the given type. The returned builder
    /// must be [`finish`](EventWriter::finish)ed to terminate the line.
    pub fn event(&mut self, ty: &str) -> EventWriter<'_> {
        self.buf.push_str("{\"type\": ");
        write_str(&mut self.buf, ty);
        EventWriter { sink: self }
    }

    /// The accumulated JSONL text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Builder for one event line; fields render in call order.
#[derive(Debug)]
pub struct EventWriter<'s> {
    sink: &'s mut JsonlSink,
}

impl EventWriter<'_> {
    fn key(&mut self, key: &str) {
        self.sink.buf.push_str(", ");
        write_str(&mut self.sink.buf, key);
        self.sink.buf.push_str(": ");
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        use std::fmt::Write as _;
        self.key(key);
        let _ = write!(self.sink.buf, "{value}");
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        write_str(&mut self.sink.buf, value);
        self
    }

    /// Adds a float field, rendered as a JSON *string* in Rust's
    /// shortest round-trip formatting. Keeping floats out of the bare
    /// grammar lets every line stay parseable by the deliberately
    /// integer-only [`crate::json::parse`], and the formatting is
    /// platform-independent, so files remain byte-stable.
    pub fn float(mut self, key: &str, value: f64) -> Self {
        use std::fmt::Write as _;
        self.key(key);
        let mut s = String::new();
        let _ = write!(s, "{value}");
        write_str(&mut self.sink.buf, &s);
        self
    }

    /// Adds an array of `[index, count]` pairs (histogram buckets).
    pub fn pairs(mut self, key: &str, pairs: &[(usize, u64)]) -> Self {
        use std::fmt::Write as _;
        self.key(key);
        self.sink.buf.push('[');
        for (i, (idx, cnt)) in pairs.iter().enumerate() {
            if i > 0 {
                self.sink.buf.push_str(", ");
            }
            let _ = write!(self.sink.buf, "[{idx}, {cnt}]");
        }
        self.sink.buf.push(']');
        self
    }

    /// Terminates the line.
    pub fn finish(self) {
        self.sink.buf.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_is_call_order() {
        let mut s = JsonlSink::new();
        s.event("cell")
            .str("instance", "g40")
            .num("makespan", 41)
            .num("wall_ns", 0)
            .finish();
        s.event("note").str("msg", "a\"b").finish();
        assert_eq!(
            s.as_str(),
            "{\"type\": \"cell\", \"instance\": \"g40\", \"makespan\": 41, \"wall_ns\": 0}\n\
             {\"type\": \"note\", \"msg\": \"a\\\"b\"}\n"
        );
    }

    #[test]
    fn pairs_render_nested() {
        let mut s = JsonlSink::new();
        s.event("histogram")
            .str("key", "h")
            .pairs("buckets", &[(0, 2), (4, 1)])
            .finish();
        assert_eq!(
            s.as_str(),
            "{\"type\": \"histogram\", \"key\": \"h\", \"buckets\": [[0, 2], [4, 1]]}\n"
        );
        let parsed = crate::json::parse(s.as_str().trim()).unwrap();
        assert_eq!(
            parsed
                .get("buckets")
                .and_then(|b| b.as_arr())
                .map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn floats_render_as_strings() {
        let mut s = JsonlSink::new();
        s.event("sample")
            .float("temp", 0.25)
            .float("cost", -3.5)
            .finish();
        assert_eq!(
            s.as_str(),
            "{\"type\": \"sample\", \"temp\": \"0.25\", \"cost\": \"-3.5\"}\n"
        );
        let parsed = crate::json::parse(s.as_str().trim()).unwrap();
        assert_eq!(parsed.get("temp").and_then(|v| v.as_str()), Some("0.25"));
    }

    #[test]
    fn lines_parse_back() {
        let mut s = JsonlSink::new();
        s.event("x").num("v", u64::MAX).finish();
        for line in s.as_str().lines() {
            assert!(crate::json::parse(line).is_ok());
        }
    }
}
