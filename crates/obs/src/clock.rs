//! The explicit [`Clock`] abstraction and [`Span`] timing scopes.
//!
//! This module is the **only** sanctioned home of `std::time::Instant`
//! in the workspace (`anneal-lint`'s `obs-clock` pass enforces it).
//! Library code never reads time directly: it takes a `&dyn Clock` and
//! the binary decides whether that is a [`WallClock`] (real timing, for
//! `time.*` metrics) or a [`NullClock`] (deterministic CI mode — every
//! duration is zero, so artifacts containing timings still compare
//! byte-for-byte).

/// A monotonic nanosecond source.
pub trait Clock {
    /// Nanoseconds since this clock's origin. Monotonic per clock
    /// instance; origins of distinct clocks are unrelated.
    fn now_ns(&self) -> u64;
}

/// Real wall-clock time, anchored at construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        let d = self.origin.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// The deterministic clock: time stands still at zero. Used by CI and
/// by any run that must be byte-reproducible including its `time.*`
/// metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullClock;

impl Clock for NullClock {
    #[inline(always)]
    fn now_ns(&self) -> u64 {
        0
    }
}

/// A lightweight timing scope: capture a start timestamp, ask for the
/// elapsed nanoseconds when the measured region ends. No `Drop` magic —
/// the caller decides where the measurement goes (usually
/// `recorder.observe("time.…", span.elapsed_ns())`).
#[derive(Clone, Copy)]
pub struct Span<'c> {
    clock: &'c dyn Clock,
    start: u64,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("start", &self.start).finish()
    }
}

impl<'c> Span<'c> {
    /// Starts a span now.
    pub fn begin(clock: &'c dyn Clock) -> Self {
        Span {
            clock,
            start: clock.now_ns(),
        }
    }

    /// Nanoseconds since [`begin`](Span::begin). Zero under
    /// [`NullClock`].
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_frozen() {
        let c = NullClock;
        let s = Span::begin(&c);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(s.elapsed_ns(), 0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let s = Span::begin(&c);
        let b = c.now_ns();
        assert!(b >= a);
        let _ = s.elapsed_ns(); // just must not underflow/panic
    }
}
