//! The [`Recorder`] sink interface and its zero-cost no-op default.

/// The narrow interface instrumented code records through.
///
/// Hot code holds `&mut R` (generic) or `&mut dyn Recorder` and calls
/// these methods with *static or pre-built* keys — never `format!`-built
/// ones — so that the [`NoopRecorder`] path performs no allocation and
/// no observable work at all. Implementations must be deterministic:
/// identical call sequences (in any order, for the commutative
/// operations below) produce identical state.
pub trait Recorder {
    /// `false` for the no-op recorder; lets callers skip building
    /// expensive inputs (per-cell event records, say) entirely.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the counter `key` (creating it at zero).
    fn add(&mut self, key: &str, delta: u64);

    /// Raises the high-water-mark gauge `key` to at least `value`.
    fn hwm(&mut self, key: &str, value: u64);

    /// Records one observation of `value` into the histogram `key`.
    fn observe(&mut self, key: &str, value: u64);
}

/// The default recorder: every operation is a no-op and
/// [`Recorder::enabled`] is `false`. Instrumented code paths built
/// against this monomorphize to nothing, which is what lets the
/// allocation-regression suite pin the recorder-off hot path at zero
/// steady-state allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn add(&mut self, _key: &str, _delta: u64) {}

    #[inline(always)]
    fn hwm(&mut self, _key: &str, _value: u64) {}

    #[inline(always)]
    fn observe(&mut self, _key: &str, _value: u64) {}
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn add(&mut self, key: &str, delta: u64) {
        (**self).add(key, delta);
    }

    #[inline]
    fn hwm(&mut self, key: &str, value: u64) {
        (**self).hwm(key, value);
    }

    #[inline]
    fn observe(&mut self, key: &str, value: u64) {
        (**self).observe(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.add("a", 1);
        r.hwm("b", 2);
        r.observe("c", 3);
        assert_eq!(r, NoopRecorder);
    }

    #[test]
    fn mut_ref_forwards() {
        fn record_into<R: Recorder>(mut r: R) -> bool {
            r.add("x", 2);
            r.hwm("y", 3);
            r.observe("z", 4);
            r.enabled()
        }
        let mut reg = crate::MetricsRegistry::new();
        // Passes `&mut MetricsRegistry` BY VALUE, exercising the
        // blanket `impl Recorder for &mut R`.
        assert!(record_into(&mut reg));
        assert_eq!(reg.counter("x"), 2);
        assert_eq!(reg.gauge("y"), 3);
        assert_eq!(reg.histogram("z").unwrap().count(), 1);
    }
}
