//! A minimal, dependency-free JSON reader/writer for the subset this
//! crate emits: objects, arrays, strings, and unsigned integers.
//!
//! The sink side ([`crate::jsonl`], [`crate::registry`]) only ever
//! writes that subset, and the parse side exists solely to read those
//! artifacts back (per-shard `metrics-<k>.jsonl` files during a
//! campaign merge), so floats, booleans and `null` are deliberately
//! out of scope for parsing — encountering one is a format error.

use std::fmt::Write as _;

/// A parsed JSON value (the emitted subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A string literal.
    Str(String),
    /// An unsigned integer (the only number kind the sinks emit).
    Num(u64),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset into the parsed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value spanning the whole input (surrounding
/// whitespace allowed).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let b = text.as_bytes();
    let mut pos = skip_ws(b, 0);
    let (v, next) = parse_value(b, pos)?;
    pos = skip_ws(b, next);
    if pos != b.len() {
        return Err(err(pos, "trailing data after value"));
    }
    Ok(v)
}

fn err(at: usize, msg: &str) -> JsonError {
    JsonError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\r' | b'\n') {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> Result<(JsonValue, usize), JsonError> {
    match b.get(i) {
        Some(b'"') => {
            let (s, n) = parse_string(b, i)?;
            Ok((JsonValue::Str(s), n))
        }
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(c) if c.is_ascii_digit() => parse_number(b, i),
        Some(_) => Err(err(i, "expected string, number, object or array")),
        None => Err(err(i, "unexpected end of input")),
    }
}

fn parse_number(b: &[u8], i: usize) -> Result<(JsonValue, usize), JsonError> {
    let mut j = i;
    let mut n: u64 = 0;
    while j < b.len() && b[j].is_ascii_digit() {
        let d = (b[j] - b'0') as u64;
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add(d))
            .ok_or_else(|| err(i, "integer overflows u64"))?;
        j += 1;
    }
    if j == i {
        return Err(err(i, "expected digits"));
    }
    if j < b.len() && matches!(b[j], b'.' | b'e' | b'E') {
        return Err(err(j, "floats are outside the emitted subset"));
    }
    Ok((JsonValue::Num(n), j))
}

fn parse_string(b: &[u8], i: usize) -> Result<(String, usize), JsonError> {
    debug_assert_eq!(b.get(i), Some(&b'"'));
    let mut out = String::new();
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'"' => return Ok((out, j + 1)),
            b'\\' => {
                let esc = b.get(j + 1).ok_or_else(|| err(j, "dangling escape"))?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(j + 2..j + 6)
                            .ok_or_else(|| err(j, "truncated \\u escape"))?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(j, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        j += 4;
                    }
                    _ => return Err(err(j, "unsupported escape")),
                }
                j += 2;
            }
            c if c < 0x80 => {
                out.push(c as char);
                j += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the whole scalar.
                let s =
                    std::str::from_utf8(&b[j..]).map_err(|_| err(j, "invalid utf-8 in string"))?;
                let ch = match s.chars().next() {
                    Some(ch) => ch,
                    None => return Err(err(j, "unterminated string")),
                };
                out.push(ch);
                j += ch.len_utf8();
            }
        }
    }
    Err(err(i, "unterminated string"))
}

fn parse_array(b: &[u8], i: usize) -> Result<(JsonValue, usize), JsonError> {
    debug_assert_eq!(b.get(i), Some(&b'['));
    let mut items = Vec::new();
    let mut j = skip_ws(b, i + 1);
    if b.get(j) == Some(&b']') {
        return Ok((JsonValue::Arr(items), j + 1));
    }
    loop {
        let (v, n) = parse_value(b, j)?;
        items.push(v);
        j = skip_ws(b, n);
        match b.get(j) {
            Some(b',') => j = skip_ws(b, j + 1),
            Some(b']') => return Ok((JsonValue::Arr(items), j + 1)),
            _ => return Err(err(j, "expected ',' or ']'")),
        }
    }
}

fn parse_object(b: &[u8], i: usize) -> Result<(JsonValue, usize), JsonError> {
    debug_assert_eq!(b.get(i), Some(&b'{'));
    let mut fields = Vec::new();
    let mut j = skip_ws(b, i + 1);
    if b.get(j) == Some(&b'}') {
        return Ok((JsonValue::Obj(fields), j + 1));
    }
    loop {
        if b.get(j) != Some(&b'"') {
            return Err(err(j, "expected object key"));
        }
        let (k, n) = parse_string(b, j)?;
        j = skip_ws(b, n);
        if b.get(j) != Some(&b':') {
            return Err(err(j, "expected ':'"));
        }
        j = skip_ws(b, j + 1);
        let (v, n) = parse_value(b, j)?;
        fields.push((k, v));
        j = skip_ws(b, n);
        match b.get(j) {
            Some(b',') => j = skip_ws(b, j + 1),
            Some(b'}') => return Ok((JsonValue::Obj(fields), j + 1)),
            _ => return Err(err(j, "expected ',' or '}'")),
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = parse(r#"{"a": 3, "b": "x\"y", "c": [[1, 2], []]}"#).unwrap();
        assert_eq!(v.get("a").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(v.get("b").and_then(|v| v.as_str()), Some("x\"y"));
        let c = v.get("c").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].as_arr().map(|a| a.len()), Some(2));
    }

    #[test]
    fn rejects_out_of_subset() {
        assert!(parse("1.5").is_err());
        assert!(parse("true").is_err());
        assert!(parse("null").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("99999999999999999999999").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}é");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}é"));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }
}
