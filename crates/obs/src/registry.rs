//! The concrete metric collector: [`MetricsRegistry`].
//!
//! Three metric kinds, all over `u64` and all with order-independent
//! merge semantics, so per-worker and per-shard registries combine into
//! the same bytes regardless of how the work was split or in which
//! order the pieces arrive:
//!
//! * **counter** — merge by addition;
//! * **gauge** — a high-water mark, merge by maximum;
//! * **histogram** — fixed log₂-scale buckets plus count/sum/min/max,
//!   merge by element-wise addition (min/max by min/max).
//!
//! Addition and max are associative and commutative, which is the whole
//! contract (property-tested in `tests/registry.rs`). Keys are sorted
//! (`BTreeMap`), so every rendering is canonical.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};
use crate::jsonl::JsonlSink;
use crate::recorder::Recorder;

/// Number of histogram buckets: bucket 0 holds zero values, bucket
/// `i ≥ 1` holds values with `floor(log2(v)) == i - 1` (i.e. `v` in
/// `[2^(i-1), 2^i)`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A fixed-bucket log₂-scale histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Element-wise merge with `other` (addition; min/max by min/max).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter (merge: add).
    Counter(u64),
    /// High-water mark (merge: max).
    Gauge(u64),
    /// Log₂-bucket histogram (merge: element-wise add). Boxed: the
    /// fixed bucket array makes it much larger than the other variants.
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Determinism class of a metric key (by naming convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Pure function of seeds and inputs: byte-identical across
    /// `--procs`, `--threads` and re-sharding.
    Deterministic,
    /// Depends on how work was divided among workers (scratch reuse,
    /// pool recycling); stable for a fixed execution plan only.
    Scheduling,
    /// Wall-clock timing; never compared across runs.
    Timing,
}

/// Classifies a key: `time.` → [`MetricClass::Timing`], `sched.` →
/// [`MetricClass::Scheduling`], anything else →
/// [`MetricClass::Deterministic`].
pub fn class_of(key: &str) -> MetricClass {
    if key.starts_with("time.") {
        MetricClass::Timing
    } else if key.starts_with("sched.") {
        MetricClass::Scheduling
    } else {
        MetricClass::Deterministic
    }
}

/// An error reading serialized metrics back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsError {
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obs error: {}", self.msg)
    }
}

impl std::error::Error for ObsError {}

fn obs_err(msg: impl Into<String>) -> ObsError {
    ObsError { msg: msg.into() }
}

/// The concrete [`Recorder`]: a sorted map from key to metric.
///
/// A key's kind is fixed by its first write; subsequent writes of a
/// different kind are ignored rather than panicking (instrumentation
/// must never abort science runs — `debug_assert`s catch kind clashes
/// in tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates `(key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Current counter value (0 when absent or a different kind).
    pub fn counter(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Current gauge value (0 when absent or a different kind).
    pub fn gauge(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram under `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.metrics.get(key) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merges `other` into `self`. Associative and commutative: any
    /// grouping and order of merges over the same underlying events
    /// yields the same registry, which is what makes per-shard metrics
    /// re-shard-invariant.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.metrics {
            match self.metrics.get_mut(k) {
                None => {
                    self.metrics.insert(k.clone(), v.clone());
                }
                Some(mine) => match (mine, v) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (mine, v) => {
                        debug_assert!(
                            false,
                            "metric kind clash on `{k}`: {} vs {}",
                            mine.kind(),
                            v.kind()
                        );
                    }
                },
            }
        }
    }

    /// A copy holding only [`MetricClass::Deterministic`] keys — the
    /// view CI compares byte-for-byte across `--procs`/`--threads`/
    /// re-sharding.
    pub fn deterministic_only(&self) -> MetricsRegistry {
        MetricsRegistry {
            metrics: self
                .metrics
                .iter()
                .filter(|(k, _)| class_of(k) == MetricClass::Deterministic)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Canonical JSON document: keys sorted, fields in fixed order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            json::write_str(&mut s, k);
            s.push_str(": ");
            write_value_json(&mut s, v);
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Appends one JSONL line per metric to `sink` (sorted key order,
    /// fixed field order) — the per-shard `metrics-<k>.jsonl` format.
    pub fn write_jsonl(&self, sink: &mut JsonlSink) {
        for (k, v) in &self.metrics {
            let mut ev = sink.event(v.kind()).str("key", k);
            match v {
                MetricValue::Counter(c) | MetricValue::Gauge(c) => {
                    ev = ev.num("value", *c);
                }
                MetricValue::Histogram(h) => {
                    ev = ev
                        .num("count", h.count)
                        .num("sum", h.sum)
                        .num("min", if h.count > 0 { h.min } else { 0 })
                        .num("max", h.max)
                        .pairs("buckets", &h.nonzero_buckets());
                }
            }
            ev.finish();
        }
    }

    /// Parses JSONL text (as produced by
    /// [`write_jsonl`](MetricsRegistry::write_jsonl)) and merges every
    /// metric line into `self`. Lines whose `type` is not a metric kind
    /// (e.g. `cell` events sharing the file) are skipped. Returns the
    /// number of metric lines merged.
    pub fn merge_jsonl(&mut self, text: &str) -> Result<usize, ObsError> {
        let mut merged = 0usize;
        let mut incoming = MetricsRegistry::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| obs_err(format!("line {}: {e}", lineno + 1)))?;
            let ty = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                continue;
            }
            let key = v
                .get("key")
                .and_then(|k| k.as_str())
                .ok_or_else(|| obs_err(format!("line {}: metric without key", lineno + 1)))?;
            let parsed = parse_metric(ty, &v)
                .map_err(|e| obs_err(format!("line {} ({key}): {}", lineno + 1, e.msg)))?;
            incoming.metrics.insert(key.to_string(), parsed);
            merged += 1;
        }
        self.merge(&incoming);
        Ok(merged)
    }
}

fn parse_metric(ty: &str, v: &JsonValue) -> Result<MetricValue, ObsError> {
    let num = |field: &str| -> Result<u64, ObsError> {
        v.get(field)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| obs_err(format!("missing numeric field `{field}`")))
    };
    match ty {
        "counter" => Ok(MetricValue::Counter(num("value")?)),
        "gauge" => Ok(MetricValue::Gauge(num("value")?)),
        _ => {
            let count = num("count")?;
            let mut h = Histogram {
                count,
                sum: num("sum")?,
                min: if count > 0 { num("min")? } else { u64::MAX },
                max: num("max")?,
                buckets: [0; HISTOGRAM_BUCKETS],
            };
            let buckets = v
                .get("buckets")
                .and_then(|b| b.as_arr())
                .ok_or_else(|| obs_err("missing `buckets` array"))?;
            for pair in buckets {
                let pair = pair.as_arr().unwrap_or(&[]);
                let (idx, cnt) = match (
                    pair.first().and_then(|p| p.as_u64()),
                    pair.get(1).and_then(|p| p.as_u64()),
                ) {
                    (Some(i), Some(c)) => (i as usize, c),
                    _ => return Err(obs_err("malformed bucket pair")),
                };
                if idx >= HISTOGRAM_BUCKETS {
                    return Err(obs_err(format!("bucket index {idx} out of range")));
                }
                h.buckets[idx] = cnt;
            }
            Ok(MetricValue::Histogram(Box::new(h)))
        }
    }
}

fn write_value_json(s: &mut String, v: &MetricValue) {
    use std::fmt::Write as _;
    match v {
        MetricValue::Counter(c) => {
            let _ = write!(s, "{{\"type\": \"counter\", \"value\": {c}}}");
        }
        MetricValue::Gauge(g) => {
            let _ = write!(s, "{{\"type\": \"gauge\", \"value\": {g}}}");
        }
        MetricValue::Histogram(h) => {
            let _ = write!(
                s,
                "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count,
                h.sum,
                if h.count > 0 { h.min } else { 0 },
                h.max
            );
            for (i, (idx, cnt)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{idx}, {cnt}]");
            }
            s.push_str("]}");
        }
    }
}

impl Recorder for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, key: &str, delta: u64) {
        match self.metrics.get_mut(key) {
            Some(MetricValue::Counter(v)) => *v += delta,
            Some(other) => {
                debug_assert!(false, "`{key}` is a {}, not a counter", other.kind());
            }
            None => {
                self.metrics
                    .insert(key.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    fn hwm(&mut self, key: &str, value: u64) {
        match self.metrics.get_mut(key) {
            Some(MetricValue::Gauge(v)) => *v = (*v).max(value),
            Some(other) => {
                debug_assert!(false, "`{key}` is a {}, not a gauge", other.kind());
            }
            None => {
                self.metrics
                    .insert(key.to_string(), MetricValue::Gauge(value));
            }
        }
    }

    fn observe(&mut self, key: &str, value: u64) {
        match self.metrics.get_mut(key) {
            Some(MetricValue::Histogram(h)) => h.observe(value),
            Some(other) => {
                debug_assert!(false, "`{key}` is a {}, not a histogram", other.kind());
            }
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                self.metrics
                    .insert(key.to_string(), MetricValue::Histogram(Box::new(h)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn kinds_and_getters() {
        let mut r = MetricsRegistry::new();
        r.add("c", 2);
        r.add("c", 3);
        r.hwm("g", 7);
        r.hwm("g", 4);
        r.observe("h", 0);
        r.observe("h", 9);
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.gauge("g"), 7);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (4, 1)]);
        assert_eq!(r.counter("missing"), 0);
        assert!(r.histogram("c").is_none());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.add("n", 1);
        a.hwm("g", 5);
        a.observe("h", 3);
        let mut b = MetricsRegistry::new();
        b.add("n", 2);
        b.hwm("g", 9);
        b.observe("h", 100);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("n"), 3);
        assert_eq!(ab.gauge("g"), 9);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.add("sim.events", 12);
        r.hwm("sim.heap_high_water", 40);
        r.observe("cell.events", 7);
        r.observe("cell.events", 0);
        let mut sink = JsonlSink::new();
        r.write_jsonl(&mut sink);
        let mut back = MetricsRegistry::new();
        let n = back.merge_jsonl(sink.as_str()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(back, r);
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn merge_jsonl_skips_foreign_events() {
        let mut r = MetricsRegistry::new();
        let text = "{\"type\": \"cell\", \"instance\": \"x\", \"wall_ns\": 5}\n\
                    {\"type\": \"counter\", \"key\": \"a\", \"value\": 4}\n";
        assert_eq!(r.merge_jsonl(text).unwrap(), 1);
        assert_eq!(r.counter("a"), 4);
        assert!(r.merge_jsonl("not json").is_err());
    }

    #[test]
    fn classes_and_filter() {
        assert_eq!(class_of("time.cell_ns"), MetricClass::Timing);
        assert_eq!(class_of("sched.pool.hits"), MetricClass::Scheduling);
        assert_eq!(class_of("sim.events"), MetricClass::Deterministic);
        let mut r = MetricsRegistry::new();
        r.add("sim.events", 1);
        r.add("time.total_ns", 999);
        r.add("sched.pool.hits", 3);
        let det = r.deterministic_only();
        assert_eq!(det.len(), 1);
        assert_eq!(det.counter("sim.events"), 1);
    }

    #[test]
    fn json_document_is_stable() {
        let mut r = MetricsRegistry::new();
        r.observe("h", 3);
        r.add("a", 1);
        let j1 = r.to_json();
        let j2 = r.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\n  \"metrics\": {"));
        // keys render sorted: "a" before "h"
        assert!(j1.find("\"a\"").unwrap() < j1.find("\"h\"").unwrap());
    }
}
